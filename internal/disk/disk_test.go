package disk

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
)

// testParams returns a small disk with deterministic rotation for exact
// timing assertions: S=1 ms/cyl, R=4 ms constant, T=2 ms/block, 10
// blocks per cylinder.
func testParams() Params {
	return Params{
		Geometry:         Geometry{Cylinders: 100, Heads: 1, SectorsPerTrack: 10, SectorBytes: 512},
		BlockBytes:       512,
		SeekPerCylinder:  1,
		AvgRotational:    4,
		TransferPerBlock: 2,
		Rotational:       RotConstant,
		Discipline:       FCFS,
	}
}

func newTestDisk(t *testing.T, k *sim.Kernel, p Params) *Disk {
	t.Helper()
	d, err := New(k, 0, p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSingleBlockServiceTime(t *testing.T) {
	k := sim.New()
	d := newTestDisk(t, k, testParams())
	// Head at cylinder 0; request block 35 -> cylinder 3.
	req := d.Submit(&Request{Start: 35, Count: 1})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// seek 3 + rot 4 + transfer 2 = 9.
	if req.Done.At() != 9 {
		t.Fatalf("done at %v, want 9", req.Done.At())
	}
	if !req.FirstDone.Done() || req.FirstDone.At() != 9 {
		t.Fatalf("first done at %v", req.FirstDone.At())
	}
}

func TestMultiBlockAmortization(t *testing.T) {
	k := sim.New()
	d := newTestDisk(t, k, testParams())
	var blockTimes []sim.Time
	req := d.Submit(&Request{
		Start: 0, Count: 5,
		OnBlock: func(i int, at sim.Time) { blockTimes = append(blockTimes, at) },
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// No seek; rot 4; blocks at 6, 8, 10, 12, 14.
	want := []sim.Time{6, 8, 10, 12, 14}
	for i := range want {
		if blockTimes[i] != want[i] {
			t.Fatalf("block times = %v, want %v", blockTimes, want)
		}
	}
	if req.FirstDone.At() != 6 || req.Done.At() != 14 {
		t.Fatalf("first/done = %v/%v", req.FirstDone.At(), req.Done.At())
	}
	st := d.Stats()
	if st.Requests != 1 || st.Blocks != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SeekTime != 0 || st.RotTime != 4 || st.TransferTime != 10 || st.BusyTime != 14 {
		t.Fatalf("time breakdown = %+v", st)
	}
}

func TestFCFSQueueing(t *testing.T) {
	k := sim.New()
	d := newTestDisk(t, k, testParams())
	// Two requests submitted together; second waits for first.
	r1 := d.Submit(&Request{Start: 0, Count: 1}) // 0+4+2 = 6
	r2 := d.Submit(&Request{Start: 0, Count: 1}) // starts at 6: +4+2 = 12
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if r1.Done.At() != 6 || r2.Done.At() != 12 {
		t.Fatalf("done at %v and %v, want 6 and 12", r1.Done.At(), r2.Done.At())
	}
	st := d.Stats()
	if st.QueueWait != 6 {
		t.Fatalf("queue wait = %v, want 6", st.QueueWait)
	}
	// Queue length excludes the request in service: only r2 ever waited.
	if st.MaxQueueLen != 1 {
		t.Fatalf("max queue = %d, want 1", st.MaxQueueLen)
	}
}

func TestHeadPositionPersists(t *testing.T) {
	k := sim.New()
	d := newTestDisk(t, k, testParams())
	// First request moves head to cylinder 5 (blocks 50-59).
	d.Submit(&Request{Start: 50, Count: 1})
	r2 := &Request{Start: 20, Count: 1}
	k.At(20, func() { d.Submit(r2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// r2: seek |5-2| = 3, rot 4, transfer 2 => 9, from t=20.
	if r2.Done.At() != 29 {
		t.Fatalf("r2 done at %v, want 29", r2.Done.At())
	}
	if d.CurrentCylinder() != 2 {
		t.Fatalf("head at %d, want 2", d.CurrentCylinder())
	}
	if d.Stats().SeekDistance != 5+3 {
		t.Fatalf("seek distance = %d", d.Stats().SeekDistance)
	}
}

func TestHeadEndsAtLastBlockCylinder(t *testing.T) {
	k := sim.New()
	d := newTestDisk(t, k, testParams())
	d.Submit(&Request{Start: 8, Count: 10}) // spans cylinders 0 and 1
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d.CurrentCylinder() != 1 {
		t.Fatalf("head at %d, want 1", d.CurrentCylinder())
	}
}

func TestSSTFPicksNearest(t *testing.T) {
	p := testParams()
	p.Discipline = SSTF
	k := sim.New()
	d := newTestDisk(t, k, p)
	// Occupy the disk, then queue far and near requests.
	d.Submit(&Request{Start: 0, Count: 1})
	far := d.Submit(&Request{Start: 90, Count: 1})  // cylinder 9
	near := d.Submit(&Request{Start: 10, Count: 1}) // cylinder 1
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !(near.Done.At() < far.Done.At()) {
		t.Fatalf("SSTF served far (%v) before near (%v)", far.Done.At(), near.Done.At())
	}
}

func TestUniformRotationalMean(t *testing.T) {
	p := testParams()
	p.Rotational = RotUniform
	k := sim.New()
	d := newTestDisk(t, k, p)
	const n = 4000
	prev := d.Submit(&Request{Start: 0, Count: 1})
	for i := 1; i < n; i++ {
		prev = d.Submit(&Request{Start: 0, Count: 1})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	_ = prev
	st := d.Stats()
	meanRot := float64(st.RotTime) / float64(st.Requests)
	if math.Abs(meanRot-4) > 0.15 {
		t.Fatalf("mean rotational latency = %v, want ~4", meanRot)
	}
	if st.RotTime < 0 {
		t.Fatal("negative rotation total")
	}
}

func TestPositionalRotationBounded(t *testing.T) {
	p := testParams()
	p.Rotational = RotPositional
	k := sim.New()
	d := newTestDisk(t, k, p)
	for i := 0; i < 50; i++ {
		d.Submit(&Request{Start: (i * 7) % 100, Count: 1})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	meanRot := float64(st.RotTime) / float64(st.Requests)
	if meanRot < 0 || meanRot >= 8 { // within [0, 2R)
		t.Fatalf("positional mean latency = %v", meanRot)
	}
}

func TestBusyObserver(t *testing.T) {
	k := sim.New()
	d := newTestDisk(t, k, testParams())
	type tr struct {
		at   sim.Time
		busy bool
	}
	var transitions []tr
	d.SetBusyObserver(func(at sim.Time, b bool) { transitions = append(transitions, tr{at, b}) })
	d.Submit(&Request{Start: 0, Count: 1})
	r2 := &Request{Start: 0, Count: 1}
	k.At(20, func() { d.Submit(r2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []tr{{0, true}, {6, false}, {20, true}, {26, false}}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v", transitions)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	k := sim.New()
	d := newTestDisk(t, k, testParams())
	for _, req := range []*Request{
		{Start: 0, Count: 0},
		{Start: -1, Count: 1},
		{Start: 999, Count: 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Submit(%+v) did not panic", req)
				}
			}()
			d.Submit(req)
		}()
	}
}

func TestParamsValidate(t *testing.T) {
	good := testParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BlockBytes = 0
	if bad.Validate() == nil {
		t.Fatal("zero block size accepted")
	}
	bad = good
	bad.BlockBytes = 700 // does not divide cylinder
	if bad.Validate() == nil {
		t.Fatal("non-dividing block size accepted")
	}
	bad = good
	bad.TransferPerBlock = 0
	if bad.Validate() == nil {
		t.Fatal("zero transfer time accepted")
	}
	bad = good
	bad.Geometry.Cylinders = 0
	if bad.Validate() == nil {
		t.Fatal("zero cylinders accepted")
	}
}

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.BlocksPerCylinder(); got != 64 {
		t.Fatalf("blocks/cylinder = %d, want 64", got)
	}
	if p.CapacityBlocks() < 50*1000 {
		t.Fatalf("capacity %d blocks cannot hold 50 runs", p.CapacityBlocks())
	}
	// m = 1000/64 = 15.625 cylinders per run, as calibrated.
	m := 1000.0 / float64(p.BlocksPerCylinder())
	if math.Abs(m-15.625) > 1e-12 {
		t.Fatalf("m = %v", m)
	}
}

func TestMeanServiceAccessors(t *testing.T) {
	k := sim.New()
	d := newTestDisk(t, k, testParams())
	d.Submit(&Request{Start: 0, Count: 4})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.MeanServiceTime() != 12 { // 0 + 4 + 8
		t.Fatalf("mean service = %v", st.MeanServiceTime())
	}
	if st.MeanBlockTime() != 3 {
		t.Fatalf("mean block time = %v", st.MeanBlockTime())
	}
	if st.MeanSeekDistance() != 0 {
		t.Fatalf("mean seek = %v", st.MeanSeekDistance())
	}
	var zero Stats
	if zero.MeanServiceTime() != 0 || zero.MeanBlockTime() != 0 || zero.MeanSeekDistance() != 0 {
		t.Fatal("zero stats accessors should be 0")
	}
}

func TestServiceTimePropertyFCFS(t *testing.T) {
	// Property: with constant rotation, total busy time equals
	// sum(seek_i + R + count_i*T) and all requests complete.
	err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		k := sim.New()
		p := testParams()
		d, err := New(k, 0, p, rng.New(9))
		if err != nil {
			return false
		}
		var reqs []*Request
		for _, r := range raw {
			start := int(r) % 990
			count := int(r%5) + 1
			reqs = append(reqs, d.Submit(&Request{Start: start, Count: count}))
		}
		if err := k.Run(); err != nil {
			return false
		}
		for _, r := range reqs {
			if !r.Done.Done() {
				return false
			}
		}
		st := d.Stats()
		return st.BusyTime == st.SeekTime+st.RotTime+st.TransferTime &&
			st.Requests == int64(len(raw))
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRotationalModelString(t *testing.T) {
	if RotUniform.String() != "uniform" || RotConstant.String() != "constant" ||
		RotPositional.String() != "positional" {
		t.Fatal("rotational model strings wrong")
	}
	if FCFS.String() != "fcfs" || SSTF.String() != "sstf" {
		t.Fatal("discipline strings wrong")
	}
}

func TestSeekTimeLinear(t *testing.T) {
	p := testParams() // S = 1 ms/cyl
	if p.SeekTime(0) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
	if p.SeekTime(7) != 7 {
		t.Fatalf("linear seek(7) = %v", p.SeekTime(7))
	}
}

func TestSeekTimeAffineSqrt(t *testing.T) {
	p := testParams()
	p.Seek = SeekAffineSqrt
	p.SeekSettle = 2
	p.SeekSqrtCoeff = 3
	if p.SeekTime(0) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
	if got := p.SeekTime(4); got != 2+3*2 { // 2 + 3*sqrt(4)
		t.Fatalf("affine seek(4) = %v, want 8", got)
	}
	// Sublinear growth: doubling distance must not double the cost.
	if !(p.SeekTime(400) < 2*p.SeekTime(100)) {
		t.Fatal("affine-sqrt seek not sublinear")
	}
}

func TestAffineSqrtSeekInService(t *testing.T) {
	k := sim.New()
	p := testParams()
	p.Seek = SeekAffineSqrt
	p.SeekSettle = 2
	p.SeekSqrtCoeff = 1
	d := newTestDisk(t, k, p)
	// Move to cylinder 9 (block 90): seek = 2 + 1*3 = 5; rot 4; xfer 2.
	req := d.Submit(&Request{Start: 90, Count: 1})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if req.Done.At() != 11 {
		t.Fatalf("done at %v, want 11", req.Done.At())
	}
}

func TestSeekModelString(t *testing.T) {
	if SeekLinear.String() != "linear" || SeekAffineSqrt.String() != "affine-sqrt" {
		t.Fatal("seek model strings wrong")
	}
}

func TestAccessorsAndGeometry(t *testing.T) {
	k := sim.New()
	d := newTestDisk(t, k, testParams())
	if d.ID() != 0 {
		t.Fatalf("ID = %d", d.ID())
	}
	if d.Params().BlockBytes != 512 {
		t.Fatalf("Params block = %d", d.Params().BlockBytes)
	}
	if d.Busy() {
		t.Fatal("new disk busy")
	}
	d.Submit(&Request{Start: 0, Count: 1})
	if !d.Busy() {
		t.Fatal("disk with request not busy")
	}
	d.Submit(&Request{Start: 0, Count: 1})
	if d.QueueLen() != 1 {
		t.Fatalf("queue = %d", d.QueueLen())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	g := testParams().Geometry
	if g.Bytes() != 100*1*10*512 {
		t.Fatalf("geometry bytes = %d", g.Bytes())
	}
}

func TestNewDiskValidation(t *testing.T) {
	k := sim.New()
	bad := testParams()
	bad.BlockBytes = 0
	if _, err := New(k, 0, bad, rng.New(1)); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := New(k, 0, testParams(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestEnumStringsUnknown(t *testing.T) {
	if RotationalModel(9).String() == "" || Discipline(9).String() == "" || SeekModel(9).String() == "" {
		t.Fatal("unknown enum strings empty")
	}
}

func TestSCANSweepsInOrder(t *testing.T) {
	p := testParams()
	p.Discipline = SCAN
	k := sim.New()
	d := newTestDisk(t, k, p)
	// Occupy the disk at cylinder 0, then queue requests at cylinders
	// 7, 3, 9, 1 out of order. Sweeping up from 0 serves 1, 3, 7, 9.
	d.Submit(&Request{Start: 0, Count: 1})
	c7 := d.Submit(&Request{Start: 70, Count: 1})
	c3 := d.Submit(&Request{Start: 30, Count: 1})
	c9 := d.Submit(&Request{Start: 90, Count: 1})
	c1 := d.Submit(&Request{Start: 10, Count: 1})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	order := []sim.Time{c1.Done.At(), c3.Done.At(), c7.Done.At(), c9.Done.At()}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("SCAN order violated: %v", order)
		}
	}
}

func TestSCANReversesWhenNothingAhead(t *testing.T) {
	p := testParams()
	p.Discipline = SCAN
	k := sim.New()
	d := newTestDisk(t, k, p)
	// Move head up to cylinder 9 first, then serve lower requests.
	d.Submit(&Request{Start: 90, Count: 1})
	low := d.Submit(&Request{Start: 20, Count: 1})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !low.Done.Done() {
		t.Fatal("downward request never served")
	}
	if d.CurrentCylinder() != 2 {
		t.Fatalf("head at %d", d.CurrentCylinder())
	}
}
