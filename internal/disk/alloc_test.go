package disk

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// TestSubmitNoWaitZeroAlloc pins the event-mode request path at zero
// allocations per serviced request: SubmitNoWait → enqueue → dispatch →
// chained block deliveries → OnBlock must all run on pooled state. A
// regression here silently re-introduces per-I/O garbage on the hottest
// loop of the simulator.
func TestSubmitNoWaitZeroAlloc(t *testing.T) {
	k := sim.New()
	d, err := New(k, 0, PaperParams(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// A standing far-future event keeps the calendar from draining, so
	// RunUntil never releases its backing arrays mid-measurement.
	k.At(1e12*sim.Millisecond, func() {})

	req := Request{Count: 4}
	req.OnBlock = func(i int, at sim.Time) {}

	submitted := 0
	var horizon sim.Time
	service := func() {
		req.Start = (submitted * 61) % 1000
		submitted++
		d.SubmitNoWait(&req)
		horizon += 10 * sim.Second // far beyond one request's service time
		if err := k.RunUntil(horizon); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		if d.Busy() || d.QueueLen() != 0 {
			t.Fatal("request did not complete within the horizon")
		}
	}
	// Warm the queue, thunk table, and calendar arrays.
	for i := 0; i < 4; i++ {
		service()
	}
	if avg := testing.AllocsPerRun(100, service); avg != 0 {
		t.Errorf("event-mode disk request path allocates %.2f allocs/op, want 0", avg)
	}
}
