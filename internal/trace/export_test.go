package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// exportRecorder hand-builds a small, fully known trace covering every
// row kind the exporters emit.
func exportRecorder() *Recorder {
	r := New(0)
	r.Track(CPUTrack, "cpu")
	r.Track(1, "disk 0")
	r.Track(2, "disk 1")
	r.DiskPhase(1, PhaseSeek, 0, 2)
	r.DiskPhase(1, PhaseRotation, 2, 5)
	r.DiskPhase(1, PhaseTransfer, 5, 9)
	r.DiskPhase(2, PhaseRetry, 3, 4)
	r.DiskPhase(2, PhaseOutage, 10, 12)
	r.CPUSpan(CPUCompute, 9, 10)
	r.CPUSpan(CPUStall, 0, 9)     // initial load: no run identity
	r.CPUStallOn(3, 10.5, 12.25)  // demand stall on run 3
	r.Prefetch(1, 3, 4, 0.5, 9)   // the fetch that stall waited on
	r.CacheSample(0, 0)
	r.CacheSample(9, 4)
	r.QueueSample(1, 0.5, 1)
	r.QueueSample(1, 0.75, 0)
	r.Mark(CPUTrack, "merge:start", 0)
	return r
}

// TestWriteCSVGolden pins the CSV exporter byte for byte: the header,
// the row schema, chronological order, the run id in a stall row's
// value column, and queue-depth rows.
func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := exportRecorder().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"kind,track,name,start_ms,end_ms,value",
		"disk,disk 0,seek,0,2,",
		"cpu,cpu,stall,0,9,",
		"cache,cache,occupancy,0,0,0",
		"mark,cpu,merge:start,0,0,",
		"prefetch,disk 0,run 3,0.5,9,4",
		"queue,disk 0,depth,0.5,0.5,1",
		"queue,disk 0,depth,0.75,0.75,0",
		"disk,disk 0,rotation,2,5,",
		"disk,disk 1,retry,3,4,",
		"disk,disk 0,transfer,5,9,",
		"cpu,cpu,compute,9,10,",
		"cache,cache,occupancy,9,9,4",
		"disk,disk 1,outage,10,12,",
		"cpu,cpu,stall,10.5,12.25,3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("CSV golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriteCSVTruncatedSentinel: a capped recorder appends the
// TruncatedMark row, and ReadCSV restores the flag from it.
func TestWriteCSVTruncatedSentinel(t *testing.T) {
	r := New(2)
	r.Track(CPUTrack, "cpu")
	r.CPUSpan(CPUCompute, 0, 1)
	r.CPUSpan(CPUCompute, 1, 2)
	r.CPUSpan(CPUCompute, 2, 3) // dropped
	if !r.Truncated() {
		t.Fatal("cap of 2 did not truncate 3 events")
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), TruncatedMark) {
		t.Fatalf("truncated export missing sentinel:\n%s", buf.String())
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Truncated() {
		t.Fatal("ReadCSV lost the truncated flag")
	}
	if len(back.CPUSpans()) != 2 {
		t.Fatalf("roundtrip span count = %d, want 2", len(back.CPUSpans()))
	}
}

// TestReadCSVRoundtrip: every span category survives a CSV write/read
// cycle with values intact.
func TestReadCSVRoundtrip(t *testing.T) {
	orig := exportRecorder()
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := back.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("CSV not a fixed point of write→read→write:\nfirst:\n%s\nsecond:\n%s", buf.String(), buf2.String())
	}
	if len(back.DiskSpans()) != len(orig.DiskSpans()) ||
		len(back.CPUSpans()) != len(orig.CPUSpans()) ||
		len(back.PrefetchSpans()) != len(orig.PrefetchSpans()) ||
		len(back.CacheSamples()) != len(orig.CacheSamples()) ||
		len(back.QueueSamples()) != len(orig.QueueSamples()) ||
		len(back.Marks()) != len(orig.Marks()) {
		t.Fatal("roundtrip changed span counts")
	}
	// The stall's run identity must survive (the explain layer keys
	// attribution on it).
	found := false
	for _, s := range back.CPUSpans() {
		if s.Kind == CPUStall && s.Run == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("roundtrip lost the stall's run identity")
	}
}

// TestWriteChromeSchema validates the Perfetto/Chrome trace-event
// document shape: the envelope keys, per-event required fields, legal
// phase codes, b/e async pairing, and metadata naming every track.
func TestWriteChromeSchema(t *testing.T) {
	r := exportRecorder()
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			Events    int  `json:"events"`
			Truncated bool `json:"truncated"`
		} `json:"otherData"`
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if doc.OtherData.Events != r.Len() || doc.OtherData.Truncated {
		t.Fatalf("otherData wrong: %+v", doc.OtherData)
	}
	legal := map[string]bool{"X": true, "b": true, "e": true, "C": true, "i": true, "M": true}
	named := map[int]bool{}
	var begins, ends int
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		if !legal[ev.Ph] {
			t.Fatalf("event %d has illegal phase %q", i, ev.Ph)
		}
		if ev.Ph != "M" && ev.Ts == nil {
			t.Fatalf("event %d (%s) has no timestamp", i, ev.Ph)
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" && ev.Tid != nil {
				named[*ev.Tid] = true
			}
		case "b":
			begins++
		case "e":
			ends++
		}
	}
	if begins != len(r.PrefetchSpans()) || begins != ends {
		t.Fatalf("async pairing broken: %d begins, %d ends, %d prefetches",
			begins, ends, len(r.PrefetchSpans()))
	}
	for id := 0; id < r.Tracks(); id++ {
		if !named[id] {
			t.Fatalf("track %d has no thread_name metadata", id)
		}
	}
	// The demand stall carries its blocking run; queue samples appear
	// as counter series.
	if !bytes.Contains(buf.Bytes(), []byte(`"name":"stall","cat":"cpu","ph":"X","ts":10500,"dur":1750,"pid":0,"tid":0,"args":{"run":3}`)) {
		t.Fatalf("stall event lost its run arg:\n%s", buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"name":"queue depth"`)) {
		t.Fatalf("queue counter series missing:\n%s", buf.String())
	}
}
