// Package trace records what a simulated merge did, in simulated time,
// at event granularity: per-disk busy segments decomposed into their
// mechanical phases (seek, rotation, fault-retry, transfer, outage),
// CPU compute and stall intervals, prefetch issue→complete spans, and
// cache-occupancy samples.
//
// The Recorder is deliberately passive — it observes the engine and the
// disk model but never feeds back into them — so attaching one cannot
// change a simulation's outcome, and a traced run produces exactly the
// result bytes of an untraced run. Every recording method is safe on a
// nil receiver and returns immediately, which is what makes the
// instrumentation zero-overhead when tracing is off: call sites pass
// the (possibly nil) recorder unconditionally instead of branching.
//
// Timestamps are sim.Time (simulated milliseconds) only. Nothing in
// this package reads a wall clock, so a trace is a pure function of
// (config, seed): byte-identical across runs and worker counts.
//
// Exporters: WriteChrome emits Chrome trace-event JSON (loadable in
// Perfetto or chrome://tracing), WriteCSV a flat time-series.
package trace

import "repro/internal/sim"

// DefaultMaxEvents bounds a Recorder when the caller passes no cap: a
// full trace of the paper's headline configuration (25 runs × 1000
// blocks on 5 disks) stays well inside it.
const DefaultMaxEvents = 1 << 20

// Phase is one component of a disk's busy time, in the order the disk
// model spends them on a dispatched request.
type Phase uint8

const (
	// PhaseSeek is arm travel to the target cylinder.
	PhaseSeek Phase = iota
	// PhaseRotation is rotational latency to the target sector.
	PhaseRotation
	// PhaseRetry is re-read time recovering transient read errors
	// (fault layer); zero-length on healthy disks.
	PhaseRetry
	// PhaseTransfer is the block transfer itself.
	PhaseTransfer
	// PhaseOutage is dispatch time lost waiting out an outage window
	// (fault layer); the disk is down, not busy.
	PhaseOutage
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseSeek:
		return "seek"
	case PhaseRotation:
		return "rotation"
	case PhaseRetry:
		return "retry"
	case PhaseTransfer:
		return "transfer"
	case PhaseOutage:
		return "outage"
	default:
		return "phase?"
	}
}

// CPUKind classifies a CPU interval.
type CPUKind uint8

const (
	// CPUCompute is merge work (MergeTimePerBlock > 0).
	CPUCompute CPUKind = iota
	// CPUStall is the CPU blocked waiting for a block to arrive.
	CPUStall
)

// String implements fmt.Stringer.
func (k CPUKind) String() string {
	if k == CPUCompute {
		return "compute"
	}
	return "stall"
}

// DiskSpan is one phase interval on one disk track.
type DiskSpan struct {
	Track int
	Phase Phase
	Start sim.Time
	End   sim.Time
}

// CPUSpan is one compute or stall interval of the merge CPU. Run
// identifies the demand run the CPU was blocked on for stall spans
// recorded through CPUStallOn; it is -1 for compute spans and for
// stalls with no single blocking run (the initial load waits on every
// run at once).
type CPUSpan struct {
	Kind  CPUKind
	Run   int
	Start sim.Time
	End   sim.Time
}

// PrefetchSpan is one fetch request from issue to its last block
// landing in the cache.
type PrefetchSpan struct {
	Track  int // disk track serving the fetch
	Run    int // run the fetch serves
	Blocks int // blocks in this extent
	Issued sim.Time
	Done   sim.Time
}

// CacheSample is the cache occupancy (resident + reserved blocks) at
// one instant; samples are taken on every occupancy change.
type CacheSample struct {
	At       sim.Time
	Occupied int
}

// QueueSample is one disk's queue depth (requests waiting, excluding
// the one in service) at one instant; samples are taken on every
// enqueue and every dispatch, so the series is a complete step
// function of the queue's evolution.
type QueueSample struct {
	Track int
	At    sim.Time
	Depth int
}

// Mark is one named instant event on a track (process starts, fault
// transitions, ...).
type Mark struct {
	Track int
	Name  string
	At    sim.Time
}

// CPUTrack is the track id of the merge CPU; disk tracks are assigned
// by the engine starting at CPUTrack+1.
const CPUTrack = 0

// Recorder accumulates trace events. The zero value is not usable —
// construct with New — but a nil *Recorder is: every method no-ops, so
// callers thread one recorder pointer through unconditionally.
//
// A Recorder is not safe for concurrent use; the engine touches it only
// from kernel context, which is single-threaded per run (and
// core.RunGrid forces traced grids serial, exactly as it does for
// Tracer callbacks).
//
// All fields are unexported: a Recorder carries observations, never
// configuration, so it contributes nothing to core.Config's canonical
// encoding — a traced config hashes identically to an untraced one,
// which is what keeps traced requests compatible with the simd result
// cache.
type Recorder struct {
	max       int
	events    int
	truncated bool

	tracks   []string // index = track id; "" = unregistered
	disk     []DiskSpan
	cpu      []CPUSpan
	prefetch []PrefetchSpan
	cache    []CacheSample
	queue    []QueueSample
	marks    []Mark
}

// New returns a Recorder holding at most maxEvents events (<= 0 means
// DefaultMaxEvents). Past the cap, events are dropped and Truncated
// reports true — a bounded trace beats an unbounded allocation.
func New(maxEvents int) *Recorder {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Recorder{max: maxEvents}
}

// admit charges one event against the cap.
func (r *Recorder) admit() bool {
	if r.events >= r.max {
		r.truncated = true
		return false
	}
	r.events++
	return true
}

// Track names a track id for the exporters ("cpu", "disk 3", ...).
// Registration is idempotent and does not count against the event cap.
func (r *Recorder) Track(id int, name string) {
	if r == nil || id < 0 {
		return
	}
	for id >= len(r.tracks) {
		r.tracks = append(r.tracks, "")
	}
	r.tracks[id] = name
}

// DiskPhase records one phase interval on a disk track. Empty intervals
// are dropped (a zero-cylinder seek spends no time).
func (r *Recorder) DiskPhase(track int, phase Phase, start, end sim.Time) {
	if r == nil || end <= start || !r.admit() {
		return
	}
	//detlint:allow hotalloc tracing-enabled runs only; the zero-alloc path carries a nil recorder
	r.disk = append(r.disk, DiskSpan{Track: track, Phase: phase, Start: start, End: end})
}

// CPUSpan records one compute or stall interval with no blocking-run
// identity (Run = -1).
func (r *Recorder) CPUSpan(kind CPUKind, start, end sim.Time) {
	if r == nil || end <= start || !r.admit() {
		return
	}
	r.cpu = append(r.cpu, CPUSpan{Kind: kind, Run: -1, Start: start, End: end})
}

// CPUStallOn records one stall interval attributed to the demand run
// the CPU was blocked on — the identity the explain layer intersects
// with in-flight prefetch spans to name the blocking disk. run < 0
// means no single run (equivalent to CPUSpan(CPUStall, ...)).
func (r *Recorder) CPUStallOn(run int, start, end sim.Time) {
	if r == nil || end <= start || !r.admit() {
		return
	}
	if run < 0 {
		run = -1
	}
	//detlint:allow hotalloc tracing-enabled runs only; the zero-alloc path carries a nil recorder
	r.cpu = append(r.cpu, CPUSpan{Kind: CPUStall, Run: run, Start: start, End: end})
}

// Prefetch records one fetch span: issued when the engine submitted the
// request, done when its last block deposited.
func (r *Recorder) Prefetch(track, run, blocks int, issued, done sim.Time) {
	if r == nil || !r.admit() {
		return
	}
	r.prefetch = append(r.prefetch, PrefetchSpan{Track: track, Run: run, Blocks: blocks, Issued: issued, Done: done})
}

// CacheSample records the cache occupancy at one instant.
func (r *Recorder) CacheSample(at sim.Time, occupied int) {
	if r == nil || !r.admit() {
		return
	}
	r.cache = append(r.cache, CacheSample{At: at, Occupied: occupied})
}

// QueueSample records one disk track's queue depth at one instant.
func (r *Recorder) QueueSample(track int, at sim.Time, depth int) {
	if r == nil || !r.admit() {
		return
	}
	//detlint:allow hotalloc tracing-enabled runs only; the zero-alloc path carries a nil recorder
	r.queue = append(r.queue, QueueSample{Track: track, At: at, Depth: depth})
}

// Mark records a named instant on a track.
func (r *Recorder) Mark(track int, name string, at sim.Time) {
	if r == nil || !r.admit() {
		return
	}
	//detlint:allow hotalloc tracing-enabled runs only; the zero-alloc path carries a nil recorder
	r.marks = append(r.marks, Mark{Track: track, Name: name, At: at})
}

// Event implements sim.Tracer, so a Recorder can be installed as the
// kernel's tracer: process lifecycle events land as marks on the CPU
// track.
func (r *Recorder) Event(t sim.Time, kind string, args ...any) {
	if r == nil {
		return
	}
	name := kind
	if len(args) > 0 {
		if s, ok := args[0].(string); ok {
			name = kind + ":" + s
		}
	}
	r.Mark(CPUTrack, name, t)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.events
}

// Truncated reports whether the event cap dropped anything.
func (r *Recorder) Truncated() bool { return r != nil && r.truncated }

// TrackName returns the registered name of a track id, or a generated
// placeholder.
func (r *Recorder) TrackName(id int) string {
	if r != nil && id >= 0 && id < len(r.tracks) && r.tracks[id] != "" {
		return r.tracks[id]
	}
	return "track " + itoa(id)
}

// Tracks returns the highest registered track id + 1.
func (r *Recorder) Tracks() int {
	if r == nil {
		return 0
	}
	return len(r.tracks)
}

// DiskSpans returns the recorded disk phase intervals in record order.
func (r *Recorder) DiskSpans() []DiskSpan {
	if r == nil {
		return nil
	}
	return r.disk
}

// CPUSpans returns the recorded CPU intervals in record order.
func (r *Recorder) CPUSpans() []CPUSpan {
	if r == nil {
		return nil
	}
	return r.cpu
}

// PrefetchSpans returns the recorded fetch spans in record order.
func (r *Recorder) PrefetchSpans() []PrefetchSpan {
	if r == nil {
		return nil
	}
	return r.prefetch
}

// CacheSamples returns the recorded occupancy samples in record order.
func (r *Recorder) CacheSamples() []CacheSample {
	if r == nil {
		return nil
	}
	return r.cache
}

// QueueSamples returns the recorded queue-depth samples in record
// order.
func (r *Recorder) QueueSamples() []QueueSample {
	if r == nil {
		return nil
	}
	return r.queue
}

// Marks returns the recorded instant events in record order.
func (r *Recorder) Marks() []Mark {
	if r == nil {
		return nil
	}
	return r.marks
}

// itoa avoids importing strconv into the hot path's dependency surface
// for one placeholder formatter.
func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
