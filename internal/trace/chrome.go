package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format's
// traceEvents array (the JSON-object form; see the Trace Event Format
// spec). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    int            `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// usPerMs converts sim.Time (milliseconds) to trace-event microseconds.
const usPerMs = 1000.0

// WriteChrome exports the trace as Chrome trace-event JSON: one thread
// track per registered track (the CPU plus one per disk), "X" complete
// events for phase and CPU intervals, async "b"/"e" pairs for prefetch
// spans, and "C" counter series for cache occupancy and per-disk queue
// depth. The output loads
// directly into Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// The byte stream is deterministic: events are emitted in record order,
// which is kernel event order, which is fixed by (config, seed).
func (r *Recorder) WriteChrome(w io.Writer) error {
	cw := &countingErrWriter{w: w}
	fmt.Fprintf(cw, `{"displayTimeUnit":"ms","otherData":{"events":%d,"truncated":%t},"traceEvents":[`,
		r.Len(), r.Truncated())

	enc := newEventEmitter(cw)
	emitChromeMetadata(enc, r)
	for _, s := range r.DiskSpans() {
		enc.emit(chromeEvent{
			Name: s.Phase.String(), Cat: "disk", Ph: "X",
			Ts: float64(s.Start) * usPerMs, Dur: float64(s.End-s.Start) * usPerMs,
			Tid: s.Track,
		})
	}
	for _, s := range r.CPUSpans() {
		ev := chromeEvent{
			Name: s.Kind.String(), Cat: "cpu", Ph: "X",
			Ts: float64(s.Start) * usPerMs, Dur: float64(s.End-s.Start) * usPerMs,
			Tid: CPUTrack,
		}
		if s.Kind == CPUStall && s.Run >= 0 {
			ev.Args = map[string]any{"run": s.Run}
		}
		enc.emit(ev)
	}
	for i, s := range r.PrefetchSpans() {
		enc.emit(chromeEvent{
			Name: "prefetch", Cat: "prefetch", Ph: "b",
			Ts: float64(s.Issued) * usPerMs, Tid: s.Track, ID: i + 1,
			Args: map[string]any{"run": s.Run, "blocks": s.Blocks, "disk": r.TrackName(s.Track)},
		})
		enc.emit(chromeEvent{
			Name: "prefetch", Cat: "prefetch", Ph: "e",
			Ts: float64(s.Done) * usPerMs, Tid: s.Track, ID: i + 1,
		})
	}
	for _, s := range r.CacheSamples() {
		enc.emit(chromeEvent{
			Name: "cache occupancy", Ph: "C",
			Ts: float64(s.At) * usPerMs, Tid: CPUTrack,
			Args: map[string]any{"blocks": s.Occupied},
		})
	}
	for _, s := range r.QueueSamples() {
		enc.emit(chromeEvent{
			Name: "queue depth", Ph: "C",
			Ts: float64(s.At) * usPerMs, Tid: s.Track,
			Args: map[string]any{"requests": s.Depth},
		})
	}
	for _, m := range r.Marks() {
		enc.emit(chromeEvent{
			Name: m.Name, Cat: "mark", Ph: "i", Scope: "t",
			Ts: float64(m.At) * usPerMs, Tid: m.Track,
		})
	}
	if enc.err != nil {
		return enc.err
	}
	_, err := io.WriteString(cw, "]}\n")
	if err == nil {
		err = cw.err
	}
	return err
}

// emitChromeMetadata names the process and each registered track so
// Perfetto shows "cpu", "disk 0", ... instead of bare thread ids.
func emitChromeMetadata(enc *eventEmitter, r *Recorder) {
	enc.emit(chromeEvent{
		Name: "process_name", Ph: "M",
		Args: map[string]any{"name": "mergesim"},
	})
	for id := 0; id < r.Tracks(); id++ {
		enc.emit(chromeEvent{
			Name: "thread_name", Ph: "M", Tid: id,
			Args: map[string]any{"name": r.TrackName(id)},
		})
		// Sort tracks by id: CPU on top, disks in order.
		enc.emit(chromeEvent{
			Name: "thread_sort_index", Ph: "M", Tid: id,
			Args: map[string]any{"sort_index": id},
		})
	}
}

// eventEmitter streams comma-separated JSON events, remembering the
// first encoding or write error.
type eventEmitter struct {
	w     io.Writer
	first bool
	err   error
}

func newEventEmitter(w io.Writer) *eventEmitter {
	return &eventEmitter{w: w, first: true}
}

func (e *eventEmitter) emit(ev chromeEvent) {
	if e.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		e.err = err
		return
	}
	if !e.first {
		if _, err := io.WriteString(e.w, ","); err != nil {
			e.err = err
			return
		}
	}
	e.first = false
	if _, err := e.w.Write(b); err != nil {
		e.err = err
	}
}

// countingErrWriter latches the first write error so export error
// handling happens once, at the end.
type countingErrWriter struct {
	w   io.Writer
	err error
}

func (c *countingErrWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return len(p), nil
	}
	n, err := c.w.Write(p)
	if err != nil {
		c.err = err
		return len(p), nil
	}
	return n, nil
}
