package trace

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"

	"repro/internal/sim"
)

// TruncatedMark is the name of the sentinel mark row WriteCSV appends
// when the recorder hit its event cap, so a reader of the flat export
// (ReadCSV included) can tell a complete timeline from a clipped one.
const TruncatedMark = "trace-truncated"

// WriteCSV exports the trace as a flat time-series with one row per
// event, sorted by start time (ties keep record order within and across
// categories via a stable sort over a fixed category order):
//
//	kind,track,name,start_ms,end_ms,value
//
// kind ∈ {disk, cpu, prefetch, cache, queue, mark}; instantaneous rows
// carry start_ms == end_ms; value is the prefetch block count, the
// cache occupancy, the queue depth, or — on cpu stall rows — the demand
// run the CPU was blocked on, empty otherwise. A truncated trace ends
// with a sentinel "mark" row named by TruncatedMark. The byte stream is
// deterministic for a fixed (config, seed).
func (r *Recorder) WriteCSV(w io.Writer) error {
	type row struct {
		start  sim.Time
		fields []string
	}
	ms := func(t sim.Time) string { return strconv.FormatFloat(float64(t), 'g', -1, 64) }
	var rows []row
	for _, s := range r.DiskSpans() {
		rows = append(rows, row{s.Start, []string{
			"disk", r.TrackName(s.Track), s.Phase.String(), ms(s.Start), ms(s.End), ""}})
	}
	for _, s := range r.CPUSpans() {
		val := ""
		if s.Kind == CPUStall && s.Run >= 0 {
			val = strconv.Itoa(s.Run)
		}
		rows = append(rows, row{s.Start, []string{
			"cpu", r.TrackName(CPUTrack), s.Kind.String(), ms(s.Start), ms(s.End), val}})
	}
	for _, s := range r.PrefetchSpans() {
		rows = append(rows, row{s.Issued, []string{
			"prefetch", r.TrackName(s.Track), "run " + strconv.Itoa(s.Run),
			ms(s.Issued), ms(s.Done), strconv.Itoa(s.Blocks)}})
	}
	for _, s := range r.CacheSamples() {
		rows = append(rows, row{s.At, []string{
			"cache", "cache", "occupancy", ms(s.At), ms(s.At), strconv.Itoa(s.Occupied)}})
	}
	for _, s := range r.QueueSamples() {
		rows = append(rows, row{s.At, []string{
			"queue", r.TrackName(s.Track), "depth", ms(s.At), ms(s.At), strconv.Itoa(s.Depth)}})
	}
	for _, m := range r.Marks() {
		rows = append(rows, row{m.At, []string{
			"mark", r.TrackName(m.Track), m.Name, ms(m.At), ms(m.At), ""}})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].start < rows[j].start })

	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "track", "name", "start_ms", "end_ms", "value"}); err != nil {
		return err
	}
	for _, rw := range rows {
		if err := cw.Write(rw.fields); err != nil {
			return err
		}
	}
	if r.Truncated() {
		last := "0"
		if n := len(rows); n > 0 {
			last = rows[n-1].fields[3]
		}
		if err := cw.Write([]string{"mark", r.TrackName(CPUTrack), TruncatedMark, last, last, ""}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
