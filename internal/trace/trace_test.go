package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestNilRecorderIsInert pins the zero-overhead contract: every method
// of a nil *Recorder is a no-op, so instrumentation sites never branch.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Track(0, "cpu")
	r.DiskPhase(1, PhaseSeek, 0, 1)
	r.CPUSpan(CPUStall, 0, 1)
	r.Prefetch(1, 0, 4, 0, 1)
	r.CacheSample(1, 3)
	r.Mark(0, "x", 2)
	r.Event(0, "proc-start", "cpu")
	if r.Len() != 0 || r.Truncated() || r.Tracks() != 0 {
		t.Fatalf("nil recorder accumulated state: len=%d truncated=%v", r.Len(), r.Truncated())
	}
	if got := r.TrackName(7); got != "track 7" {
		t.Fatalf("TrackName on nil = %q", got)
	}
}

func sample() *Recorder {
	r := New(0)
	r.Track(CPUTrack, "cpu")
	r.Track(1, "disk 0")
	r.Track(2, "disk 1")
	r.DiskPhase(1, PhaseSeek, 0, 2.5)
	r.DiskPhase(1, PhaseRotation, 2.5, 10)
	r.DiskPhase(1, PhaseTransfer, 10, 12)
	r.DiskPhase(2, PhaseRetry, 3, 4)
	r.CPUSpan(CPUStall, 0, 12)
	r.CPUSpan(CPUCompute, 12, 13)
	r.Prefetch(1, 3, 4, 0, 12)
	r.CacheSample(0, 0)
	r.CacheSample(12, 4)
	r.Mark(CPUTrack, "proc-start:cpu", 0)
	return r
}

func TestEventCapTruncates(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.CacheSample(sim.Time(i), i)
	}
	if r.Len() != 3 || !r.Truncated() {
		t.Fatalf("len=%d truncated=%v, want 3/true", r.Len(), r.Truncated())
	}
	if got := len(r.CacheSamples()); got != 3 {
		t.Fatalf("kept %d samples, want 3", got)
	}
}

func TestEmptySpansDropped(t *testing.T) {
	r := New(0)
	r.DiskPhase(1, PhaseSeek, 5, 5)   // zero-length: a 0-cylinder seek
	r.CPUSpan(CPUStall, 7, 6)         // non-positive
	if r.Len() != 0 {
		t.Fatalf("recorded %d events from empty spans", r.Len())
	}
}

// TestWriteChromeParses loads the export back through encoding/json and
// checks the shape Perfetto depends on: a traceEvents array of objects
// with ph/ts fields, thread-name metadata for every track, and
// microsecond timestamps.
func TestWriteChromeParses(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			Events    int  `json:"events"`
			Truncated bool `json:"truncated"`
		} `json:"otherData"`
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" || doc.OtherData.Truncated {
		t.Fatalf("header = %+v", doc)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var names, phases []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			names = append(names, ev.Name)
		}
		if ev.Ph == "X" {
			phases = append(phases, ev.Name)
		}
	}
	if len(names) != 3 {
		t.Fatalf("%d thread_name metadata events, want 3", len(names))
	}
	joined := strings.Join(phases, ",")
	for _, want := range []string{"seek", "rotation", "transfer", "retry", "stall", "compute"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("X events %q missing %q", joined, want)
		}
	}
	// 2.5 ms seek end → 2500 µs.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "seek" && ev.Dur > 2499 && ev.Dur < 2501 {
			found = true
		}
	}
	if !found {
		t.Fatal("seek span not in microseconds")
	}
}

func TestWriteCSVSortedByStart(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "kind,track,name,start_ms,end_ms,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+sample().Len() {
		t.Fatalf("%d rows for %d events", len(lines)-1, sample().Len())
	}
	prev := -1.0
	for _, ln := range lines[1:] {
		f := strings.Split(ln, ",")
		var start float64
		if err := json.Unmarshal([]byte(f[3]), &start); err != nil {
			t.Fatalf("bad start_ms %q: %v", f[3], err)
		}
		if start < prev {
			t.Fatalf("rows out of order: %g after %g", start, prev)
		}
		prev = start
	}
}

// TestExportDeterminism pins byte-identical exports for identically
// recorded traces — the property the engine-level byte-identity test
// builds on.
func TestExportDeterminism(t *testing.T) {
	var a, b, ca, cb bytes.Buffer
	if err := sample().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := sample().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome export is not deterministic")
	}
	if err := sample().WriteCSV(&ca); err != nil {
		t.Fatal(err)
	}
	if err := sample().WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatal("csv export is not deterministic")
	}
}
