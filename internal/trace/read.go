package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// ReadCSV reconstructs a Recorder from a WriteCSV export, so trace
// analytics (internal/explain, cmd/traceq) can run on a saved trace
// file as well as on a live in-process recorder. The reconstruction is
// faithful for everything the analytics consume: spans, samples, marks,
// track names, and the truncated flag (restored from the sentinel
// TruncatedMark row). Record order within each category follows file
// order, which WriteCSV made chronological.
func ReadCSV(rd io.Reader) (*Recorder, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = 6
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace csv: read header: %w", err)
	}
	if header[0] != "kind" || header[3] != "start_ms" {
		return nil, fmt.Errorf("trace csv: unexpected header %q", strings.Join(header, ","))
	}

	// The cap guards live recording, not reconstruction: a file that was
	// written under a larger-than-default cap must reload whole, so give
	// the reader effectively unbounded headroom.
	r := New(1 << 30)
	tracks := map[string]int{}
	trackID := func(name string) int {
		if id, ok := tracks[name]; ok {
			return id
		}
		// The engine registers "cpu" as track 0, input "disk N" at 1+N
		// and output "write N" after the input range; recover ids that
		// preserve that ordering so analytics sort tracks exactly as
		// they would on a live recorder. Exact write-track ids are not
		// recoverable from the name alone (they depend on D), so writes
		// land in a high band that keeps index order; other unknown
		// names follow in encounter order.
		id := -1
		if name == "cpu" {
			id = CPUTrack
		} else if n, ok := strings.CutPrefix(name, "disk "); ok {
			if d, err := strconv.Atoi(n); err == nil && d >= 0 {
				id = CPUTrack + 1 + d
			}
		} else if n, ok := strings.CutPrefix(name, "write "); ok {
			if d, err := strconv.Atoi(n); err == nil && d >= 0 {
				id = 1<<20 + d
			}
		}
		if id < 0 {
			id = 2<<20 + len(tracks)
		}
		tracks[name] = id
		r.Track(id, name)
		return id
	}
	phases := map[string]Phase{}
	for p := PhaseSeek; p <= PhaseOutage; p++ {
		phases[p.String()] = p
	}

	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace csv: line %d: %w", line, err)
		}
		kind, track, name, val := rec[0], rec[1], rec[2], rec[5]
		start, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace csv: line %d: start_ms %q: %w", line, rec[3], err)
		}
		end, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace csv: line %d: end_ms %q: %w", line, rec[4], err)
		}
		s, e := sim.Time(start), sim.Time(end)
		switch kind {
		case "disk":
			p, ok := phases[name]
			if !ok {
				return nil, fmt.Errorf("trace csv: line %d: unknown disk phase %q", line, name)
			}
			r.DiskPhase(trackID(track), p, s, e)
		case "cpu":
			switch name {
			case "compute":
				trackID(track)
				r.CPUSpan(CPUCompute, s, e)
			case "stall":
				trackID(track)
				run := -1
				if val != "" {
					if run, err = strconv.Atoi(val); err != nil {
						return nil, fmt.Errorf("trace csv: line %d: stall run %q: %w", line, val, err)
					}
				}
				r.CPUStallOn(run, s, e)
			default:
				return nil, fmt.Errorf("trace csv: line %d: unknown cpu span %q", line, name)
			}
		case "prefetch":
			run, ok := strings.CutPrefix(name, "run ")
			if !ok {
				return nil, fmt.Errorf("trace csv: line %d: prefetch name %q", line, name)
			}
			rn, err := strconv.Atoi(run)
			if err != nil {
				return nil, fmt.Errorf("trace csv: line %d: prefetch run %q: %w", line, run, err)
			}
			blocks, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("trace csv: line %d: prefetch blocks %q: %w", line, val, err)
			}
			r.Prefetch(trackID(track), rn, blocks, s, e)
		case "cache":
			occ, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("trace csv: line %d: cache occupancy %q: %w", line, val, err)
			}
			r.CacheSample(s, occ)
		case "queue":
			depth, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("trace csv: line %d: queue depth %q: %w", line, val, err)
			}
			r.QueueSample(trackID(track), s, depth)
		case "mark":
			if name == TruncatedMark {
				r.truncated = true
				continue
			}
			r.Mark(trackID(track), name, s)
		default:
			return nil, fmt.Errorf("trace csv: line %d: unknown kind %q", line, kind)
		}
	}
	return r, nil
}
