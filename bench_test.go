// Package repro's benchmark harness regenerates every figure of the
// paper's evaluation (§3) under `go test -bench`. Each BenchmarkFigXX
// runs the corresponding experiment generator; per-iteration wall time
// is the cost of regenerating that panel. The reported custom metrics
// surface the headline simulated quantities so bench output alone tells
// the paper's story:
//
//	sim-seconds   simulated merge time of the panel's reference point
//	overlap       average number of concurrently busy disks
//	success       prefetch success ratio
//
// Micro-benchmarks for the substrates (kernel, disk, cache, loser tree)
// follow the figure benches.
package repro

import (
	"context"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/experiments"
	"repro/internal/explain"
	"repro/internal/extsort"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchOpts keeps figure regeneration affordable under -bench: one
// trial, coarse grids. Full-fidelity regeneration is cmd/figures.
func benchOpts() experiments.Options {
	return experiments.Options{Trials: 1, Seed: 1, Quick: true}
}

// runFigure benchmarks one experiment generator.
func runFigure(b *testing.B, id string) {
	b.Helper()
	spec, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := spec.Run(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig32a(b *testing.B) { runFigure(b, "3.2a") }
func BenchmarkFig32b(b *testing.B) { runFigure(b, "3.2b") }
func BenchmarkFig32c(b *testing.B) { runFigure(b, "3.2c") }
func BenchmarkFig33(b *testing.B)  { runFigure(b, "3.3") }

// Figures 3.5 and 3.6 are produced by the same cache sweep.
func BenchmarkFig35aFig36a(b *testing.B) { runFigure(b, "3.5a") }
func BenchmarkFig35bFig36b(b *testing.B) { runFigure(b, "3.5b") }
func BenchmarkFig35cFig36c(b *testing.B) { runFigure(b, "3.5c") }

func BenchmarkAnchorValidation(b *testing.B)  { runFigure(b, "anchors") }
func BenchmarkUrnConcurrency(b *testing.B)    { runFigure(b, "concurrency") }
func BenchmarkAblationAdmission(b *testing.B) { runFigure(b, "ablation-admission") }
func BenchmarkAblationRunChoice(b *testing.B) { runFigure(b, "ablation-runchoice") }
func BenchmarkAblationRotation(b *testing.B)  { runFigure(b, "ablation-rotation") }
func BenchmarkAblationPlacement(b *testing.B) { runFigure(b, "ablation-placement") }
func BenchmarkAblationScheduler(b *testing.B) { runFigure(b, "ablation-scheduler") }
func BenchmarkAblationSeekModel(b *testing.B) { runFigure(b, "ablation-seekmodel") }
func BenchmarkExtWriteTraffic(b *testing.B)   { runFigure(b, "ext-write-traffic") }
func BenchmarkExtMultiPass(b *testing.B)      { runFigure(b, "ext-multipass") }
func BenchmarkTRMarkov(b *testing.B)          { runFigure(b, "tr-markov") }
func BenchmarkExtRealTrace(b *testing.B)      { runFigure(b, "ext-realtrace") }
func BenchmarkExtAdaptiveN(b *testing.B)      { runFigure(b, "ext-adaptive-n") }
func BenchmarkExtK100(b *testing.B)           { runFigure(b, "ext-k100") }
func BenchmarkExtModernDisk(b *testing.B)     { runFigure(b, "ext-modern-disk") }
func BenchmarkExtDegradedDisk(b *testing.B)   { runFigure(b, "ext-degraded-disk") }
func BenchmarkExtStallAttribution(b *testing.B) {
	runFigure(b, "ext-stall-attribution")
}

// BenchmarkAllFiguresQuick regenerates the entire quick figure set
// through the parallel sweep executor — the figure-level macro number
// that the per-panel benches above break down. It is the bench-side
// twin of `figures -quick`: specs fan out concurrently and every
// spec's points×trials grid saturates the worker pool.
func BenchmarkAllFiguresQuick(b *testing.B) {
	specs := experiments.All()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(specs, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStrategy times one full simulated merge at the paper's headline
// shape and reports the simulated quantities as custom metrics.
func benchStrategy(b *testing.B, n int, inter, sync bool) {
	b.Helper()
	cfg := core.Default()
	cfg.N = n
	cfg.InterRun = inter
	cfg.Synchronized = sync
	if inter {
		cfg.CacheBlocks = cache.Unlimited
	} else {
		cfg.CacheBlocks = cfg.DefaultCache()
	}
	var last core.Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.TotalTime.Seconds(), "sim-seconds")
	b.ReportMetric(last.MeanConcurrencyWhenBusy, "overlap")
	b.ReportMetric(last.SuccessRatio(), "success")
}

func BenchmarkMergeNoPrefetch(b *testing.B)  { benchStrategy(b, 1, false, false) }
func BenchmarkMergeIntraUnsync(b *testing.B) { benchStrategy(b, 10, false, false) }
func BenchmarkMergeIntraSync(b *testing.B)   { benchStrategy(b, 10, false, true) }
func BenchmarkMergeInterUnsync(b *testing.B) { benchStrategy(b, 10, true, false) }
func BenchmarkMergeInterSync(b *testing.B)   { benchStrategy(b, 10, true, true) }

// BenchmarkKernelEvents measures raw event throughput of the DES
// substrate.
func BenchmarkKernelEvents(b *testing.B) {
	k := sim.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(1, tick)
		}
	}
	k.After(1, tick)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelEventsTraced is the zero-overhead guard for the
// tracing subsystem: the same event loop as BenchmarkKernelEvents with
// a trace.Recorder installed on the kernel. Timer-event dispatch has no
// tracer hook — recording happens at process boundaries and in the
// model layer (disk, engine, cache) — so this must match
// BenchmarkKernelEvents within noise.
func BenchmarkKernelEventsTraced(b *testing.B) {
	k := sim.New()
	k.SetTracer(trace.New(1024))
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(1, tick)
		}
	}
	k.After(1, tick)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExplainReport measures the offline trace-analytics pass:
// one full stall-attribution report built (and conservation-checked)
// per iteration from a pre-recorded trace of a faulty, write-enabled
// merge. Tracing itself stays out of the loop — explain is pure
// post-processing, so untraced simulations pay nothing for it (the
// KernelEvents vs KernelEventsTraced pair above guards the recording
// side).
func BenchmarkExplainReport(b *testing.B) {
	cfg := core.Default()
	cfg.K = 8
	cfg.D = 4
	cfg.N = 3
	cfg.BlocksPerRun = 60
	cfg.InterRun = true
	cfg.CacheBlocks = cfg.DefaultCache()
	cfg.MergeTimePerBlock = sim.Ms(0.1)
	cfg.Seed = 42
	rec := trace.New(0)
	cfg.Trace = rec
	res, err := core.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := explain.Build(rec, explain.Options{Makespan: res.TotalTime})
		if err := rep.Check(res.StallTime); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelProcessSwitch measures the process handoff cost.
func BenchmarkKernelProcessSwitch(b *testing.B) {
	k := sim.New()
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDiskRequest measures single-block request service overhead
// on the event-mode path: one pooled Request is resubmitted from its
// own OnBlock in a closed loop, the way the event engine drives disks.
// Steady state must be zero-alloc (CI fails the build otherwise).
func BenchmarkDiskRequest(b *testing.B) {
	k := sim.New()
	d, err := disk.New(k, 0, disk.PaperParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	req := disk.Request{Count: 1}
	req.OnBlock = func(i int, at sim.Time) {
		n++
		if n < b.N {
			req.Start = (n * 37) % 1000
			d.SubmitNoWait(&req)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	d.SubmitNoWait(&req)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDiskRequestShim is the same closed loop through the
// process-shim Submit path, which allocates two completion latches per
// request. The gap against BenchmarkDiskRequest is the per-request cost
// the event core removed.
func BenchmarkDiskRequestShim(b *testing.B) {
	k := sim.New()
	d, err := disk.New(k, 0, disk.PaperParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	// Two requests alternate: a Submit-path request's completion latches
	// are live until its last block delivers, so the one in flight cannot
	// be resubmitted from its own OnBlock the way the no-wait request is.
	var reqs [2]disk.Request
	onBlock := func(i int, at sim.Time) {
		n++
		if n < b.N {
			next := &reqs[n%2]
			next.Start = (n * 37) % 1000
			d.Submit(next)
		}
	}
	for j := range reqs {
		reqs[j].Count = 1
		reqs[j].OnBlock = onBlock
	}
	b.ReportAllocs()
	b.ResetTimer()
	d.Submit(&reqs[0])
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCacheOps measures the reserve/deposit/consume cycle.
func BenchmarkCacheOps(b *testing.B) {
	c, err := cache.New(1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if !c.Reserve(1) {
			b.Fatal("reserve failed")
		}
		c.Deposit(0, i)
		c.Consume(0)
	}
}

// BenchmarkLoserTreeMerge measures the real k-way record merge.
func BenchmarkLoserTreeMerge(b *testing.B) {
	cfg := extsort.Config{RecordSize: 8, BlockSize: 4096, MemoryBlocks: 8, Formation: extsort.LoadSort}
	r := rng.New(3)
	const records = 64 * 1024
	data := make([]byte, records*8)
	for i := 0; i < len(data); i += 8 {
		binary.BigEndian.PutUint64(data[i:], r.Uint64())
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := extsort.NewSliceReader(data, 8)
		if err != nil {
			b.Fatal(err)
		}
		store := extsort.NewMemStore()
		if _, err := extsort.FormRuns(cfg, in, store); err != nil {
			b.Fatal(err)
		}
		if _, err := extsort.Merge(cfg, store, discardWriter{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(rec []byte) error { _, _ = io.Discard.Write(rec); return nil }

// benchService builds a daemon-less service instance over a small fast
// configuration. The cold benchmark varies the seed so every iteration
// misses the cache and pays for a full engine run; the cached benchmark
// repeats one request so every iteration after the first is a pure
// cache lookup. The gap between the two is the value of the result
// cache per request.
func benchService(b *testing.B) *service.Service {
	b.Helper()
	return service.New(service.Options{CacheEntries: b.N + 1})
}

func benchServiceReq(seed uint64) service.SimulateRequest {
	return service.SimulateRequest{K: 4, D: 2, N: 2, BlocksPerRun: 40, Seed: seed, Trials: 1}
}

func BenchmarkServiceSimulateCold(b *testing.B) {
	svc := benchService(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := svc.Simulate(ctx, benchServiceReq(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = svc.Drain(ctx)
}

func BenchmarkServiceSimulateCached(b *testing.B) {
	svc := benchService(b)
	ctx := context.Background()
	if _, _, err := svc.Simulate(ctx, benchServiceReq(1)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, status, err := svc.Simulate(ctx, benchServiceReq(1))
		if err != nil {
			b.Fatal(err)
		}
		if status != service.CacheHit {
			b.Fatalf("X-Cache = %v, want hit", status)
		}
		_ = body
	}
	b.StopTimer()
	_ = svc.Drain(ctx)
}

// BenchmarkOptimizeSmallGrid runs one full small-grid configuration
// search per iteration: 4 candidates (prefetch depth x strategy) over
// a tiny merge, evaluated through the service's cache + singleflight
// path. The template seed varies per iteration so every search is
// cold — this prices the search harness plus four engine runs, the
// worst case a /v1/optimize request pays. The cache-served metric
// reports how much of the work the result cache absorbed across the
// whole benchmark (revisit-free grids stay at 0 when cold).
func BenchmarkOptimizeSmallGrid(b *testing.B) {
	svc := benchService(b)
	ctx := context.Background()
	served, evals := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := service.OptimizeRequest{
			Template: &service.SimulateRequest{K: 4, D: 2, BlocksPerRun: 40, Seed: uint64(i) + 1},
			Space: service.OptimizeSpaceRequest{
				N:           &service.DimensionRequest{Values: []int{1, 2}},
				CacheBlocks: &service.DimensionRequest{Values: []int{0}},
				Strategies:  []string{"intra-unsync", "inter-unsync"},
			},
		}
		body, s, e, err := svc.Optimize(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		served += s
		evals += e
		_ = body
	}
	b.StopTimer()
	b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
	b.ReportMetric(float64(served)/float64(b.N), "cache-served/op")
	_ = svc.Drain(ctx)
}
