# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench bench-json serve figures figures-quick verify examples clean

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Performance ledger: run the figure benches once each (they regenerate
# whole panels; 1x keeps the run affordable) and the micro-benches at
# full precision, then parse everything into BENCH_1.json. Commit the
# file so optimization PRs carry their numbers.
bench-json:
	{ go test -run '^$$' -bench '^Benchmark(Fig|All|Ablation|Ext|Anchor|Urn|TRMarkov)' -benchtime=1x . ; \
	  go test -run '^$$' -bench '^Benchmark(Kernel|Disk|Cache|LoserTree|Merge|Service)' -benchmem . ; } \
	| go run ./cmd/benchjson -out BENCH_1.json

# Run the simulation daemon on :8080 (see cmd/simd -h for flags).
serve:
	go run ./cmd/simd

# Regenerate the paper's evaluation at full fidelity (5 trials) with
# CSV and SVG artifacts under figures-out/.
figures:
	go run ./cmd/figures -csv -svg -chart=false -out figures-out

figures-quick:
	go run ./cmd/figures -quick

# Regression-check figures against the committed reference CSVs.
verify:
	go run ./cmd/figures -verify -out figures-out

examples:
	go run ./examples/quickstart
	go run ./examples/strategycompare
	go run ./examples/capacityplanning
	go run ./examples/externalsort
	go run ./examples/sortpipeline

clean:
	rm -rf figures-out-tmp
