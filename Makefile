# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench bench-json serve figures figures-quick verify examples clean lint fuzz

all: build test

# Pinned static-analysis tool versions (tools.go documents the same
# pins; they are not go.mod requirements so offline builds stay clean).
# CI installs exactly these; locally they are optional.
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Static analysis: go vet and the repo-specific detlint analyzers are
# mandatory and hermetic (stdlib only). staticcheck and govulncheck run
# at their pinned versions when installed; install hints otherwise.
#   go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
#   go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
lint:
	go vet ./...
	go run ./cmd/detlint -baseline .detlint-baseline
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# Fuzz smoke: the serving boundary must never panic on arbitrary bytes,
# the canonical config encoding must be a decode/encode fixed point, the
# disk-cache entry codec must reject every mutation of its one valid
# serialization per entry, and the lint layer's directive parser and
# baseline codec must survive arbitrary comment text and ledger bytes.
FUZZTIME ?= 10s
fuzz:
	go test -run '^$$' -fuzz '^FuzzDecodeSimulateRequest$$' -fuzztime $(FUZZTIME) ./internal/service
	go test -run '^$$' -fuzz '^FuzzDecodeOptimizeRequest$$' -fuzztime $(FUZZTIME) ./internal/service
	go test -run '^$$' -fuzz '^FuzzCanonicalJSONRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/core
	go test -run '^$$' -fuzz '^FuzzDecodeDiskCacheEntry$$' -fuzztime $(FUZZTIME) ./internal/diskcache
	go test -run '^$$' -fuzz '^FuzzParseAllowDirective$$' -fuzztime $(FUZZTIME) ./internal/lint
	go test -run '^$$' -fuzz '^FuzzBaselineRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/lint

bench:
	go test -bench=. -benchmem ./...

# Performance ledger: run the figure benches twice each (they
# regenerate whole panels; 2x keeps the run affordable while averaging
# out single-iteration jitter) and the micro-benches at full precision,
# then parse everything into BENCH_4.json. Commit the file so
# optimization PRs carry their numbers; the compare step prints the
# delta against the previous ledger and flags >10% regressions.
bench-json:
	{ go test -run '^$$' -bench '^Benchmark(Fig|All|Ablation|Ext|Anchor|Urn|TRMarkov)' -benchtime=2x . ; \
	  go test -run '^$$' -bench '^Benchmark(Kernel|Disk|Cache|LoserTree|Merge|Service|Optimize|Explain)' -benchmem . ; } \
	| go run ./cmd/benchjson -out BENCH_4.json
	go run ./cmd/benchjson -compare BENCH_3.json BENCH_4.json

# Run the simulation daemon on :8080 (see cmd/simd -h for flags).
serve:
	go run ./cmd/simd

# Regenerate the paper's evaluation at full fidelity (5 trials) with
# CSV and SVG artifacts under figures-out/.
figures:
	go run ./cmd/figures -csv -svg -chart=false -out figures-out

figures-quick:
	go run ./cmd/figures -quick

# Regression-check figures against the committed reference CSVs, after
# the tree passes static analysis.
verify: lint
	go run ./cmd/figures -verify -out figures-out

examples:
	go run ./examples/quickstart
	go run ./examples/strategycompare
	go run ./examples/capacityplanning
	go run ./examples/externalsort
	go run ./examples/sortpipeline

clean:
	rm -rf figures-out-tmp
