// Command extsort runs a real external mergesort on synthetic records,
// verifies the output, and then replays the merge's block-depletion
// trace through the paper's I/O simulator to report what the merge
// phase would cost under each prefetching strategy.
//
// Example:
//
//	extsort -records 200000 -memory-blocks 100 -d 5 -n 10
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/extsort"
	"repro/internal/rng"
)

func main() {
	var (
		records   = flag.Int("records", 100000, "number of synthetic records to sort")
		recSize   = flag.Int("record-size", 80, "record size in bytes")
		blockSize = flag.Int("block-size", 4096, "block size in bytes")
		memBlocks = flag.Int("memory-blocks", 100, "run-formation memory in blocks")
		rs        = flag.Bool("rs", false, "use replacement selection instead of load-sort")
		d         = flag.Int("d", 5, "disks for the simulated merge")
		n         = flag.Int("n", 10, "intra-run prefetch depth for the simulated merge")
		cacheSize = flag.Int("cache", -1, "simulated cache blocks (-1 = unlimited)")
		seed      = flag.Uint64("seed", 1, "random seed for the synthetic input")
		fanIn     = flag.Int("fanin", 0, "multi-pass mode: merge at most this many runs per group (0 = single merge)")
		storeKind = flag.String("store", "mem", "run storage: mem or file (spills runs to a temp dir)")
	)
	flag.Parse()

	cfg := extsort.DefaultConfig()
	cfg.RecordSize = *recSize
	cfg.BlockSize = *blockSize
	cfg.MemoryBlocks = *memBlocks
	if *rs {
		cfg.Formation = extsort.ReplacementSelection
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	// Synthesize input.
	r := rng.New(*seed)
	data := make([]byte, *records**recSize)
	for i := 0; i < len(data); i += 8 {
		binary.BigEndian.PutUint64(data[i:min(i+8, len(data))], r.Uint64())
	}
	in, err := extsort.NewSliceReader(data, cfg.RecordSize)
	if err != nil {
		fatal(err)
	}

	newStore := func() extsort.RunStore { return extsort.NewMemStore() }
	switch *storeKind {
	case "mem":
	case "file":
		newStore = func() extsort.RunStore {
			dir, err := os.MkdirTemp("", "extsort-runs-")
			if err != nil {
				fatal(err)
			}
			s, err := extsort.NewFileStore(dir)
			if err != nil {
				fatal(err)
			}
			return s
		}
	default:
		fatal(fmt.Errorf("unknown store %q", *storeKind))
	}

	if *fanIn > 1 {
		runMultiPass(cfg, in, *fanIn, *d, *n, *cacheSize, newStore)
		return
	}

	store := newStore()
	out := extsort.NewCountingWriter(cfg)
	stats, err := extsort.Sort(cfg, in, store, out)
	if err != nil {
		fatal(err)
	}
	if !out.Ordered() {
		fatal(fmt.Errorf("output not sorted — library bug"))
	}

	fmt.Printf("sorted         %d records (%d-byte records, %d-byte blocks, %s)\n",
		stats.Records, cfg.RecordSize, cfg.BlockSize, cfg.Formation)
	fmt.Printf("runs           %d (memory %d blocks)\n", stats.Runs, cfg.MemoryBlocks)
	fmt.Printf("merge blocks   %d\n", len(stats.Trace.Runs))

	if stats.Runs < 2 {
		fmt.Println("fewer than 2 runs: nothing to simulate")
		return
	}

	base := core.Default()
	base.D = *d
	base.N = *n
	if *cacheSize == -1 {
		base.CacheBlocks = cache.Unlimited
	} else {
		base.CacheBlocks = *cacheSize
	}

	fmt.Printf("\nsimulated merge-phase I/O time (D=%d, N=%d):\n", *d, *n)
	for _, s := range []struct {
		name  string
		n     int
		inter bool
	}{
		{"no prefetch", 1, false},
		{"intra-run (demand run only)", *n, false},
		{"inter+intra (all disks one run)", *n, true},
	} {
		c := base
		c.N = s.n
		c.InterRun = s.inter
		runBlocks, err := extsort.RunBlocksOf(store)
		if err != nil {
			fatal(err)
		}
		res, err := extsort.SimulateMerge(runBlocks, stats.Trace, c)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-33s %8.3f s   (overlap %.2f disks, success %.3f)\n",
			s.name, res.TotalTime.Seconds(), res.MeanConcurrencyWhenBusy, res.SuccessRatio())
	}
}

// runMultiPass sorts with bounded fan-in and simulates every pass.
func runMultiPass(cfg extsort.Config, in extsort.RecordReader, fanIn, d, n, cacheSize int, newStore func() extsort.RunStore) {
	out := extsort.NewCountingWriter(cfg)
	res, err := extsort.MultiPassSort(cfg, fanIn, in, newStore, out)
	if err != nil {
		fatal(err)
	}
	if !out.Ordered() {
		fatal(fmt.Errorf("output not sorted — library bug"))
	}
	fmt.Printf("sorted         %d records in %d merge passes (fan-in %d)\n",
		res.Records, len(res.Passes), fanIn)
	for _, p := range res.Passes {
		fmt.Printf("  pass %d: %d runs -> %d (%d groups)\n",
			p.Index, p.RunsIn, p.RunsOut, len(p.GroupTraces))
	}

	base := core.Default()
	base.D = d
	base.N = n
	base.InterRun = true
	if cacheSize == -1 {
		base.CacheBlocks = cache.Unlimited
	} else {
		base.CacheBlocks = cacheSize
	}
	perPass, total, err := extsort.SimulatePasses(res, base)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nsimulated merge I/O (inter+intra, D=%d, N=%d):\n", d, n)
	for i, p := range perPass {
		fmt.Printf("  pass %d: %8.3f s\n", i, p.Seconds())
	}
	fmt.Printf("  total:  %8.3f s\n", total.Seconds())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "extsort:", err)
	os.Exit(1)
}
