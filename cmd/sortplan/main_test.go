package main

import "testing"

func TestParseBlocks(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"1000", 1000},
		{"4K", 1},      // 4096 bytes = 1 block
		{"1M", 256},    // 1 MiB / 4 KiB
		{"1G", 262144}, // 1 GiB / 4 KiB
		{"0.5M", 128},  // fractional sizes allowed
		{" 2M ", 512},  // whitespace tolerated
		{"3m", 768},    // lowercase suffix
	}
	for _, c := range cases {
		got, err := parseBlocks(c.in, 4096)
		if err != nil {
			t.Fatalf("parseBlocks(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("parseBlocks(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "12Q", "0K", "K"} {
		if _, err := parseBlocks(bad, 4096); err == nil {
			t.Fatalf("parseBlocks(%q) accepted", bad)
		}
	}
}
