// Command sortplan plans a full multi-pass external mergesort — run
// formation plus one or more merge passes — for a given data size,
// memory budget and disk count, and optionally validates each pass
// against the simulator.
//
// Sizes accept block counts or byte suffixes (K, M, G at 1024 and the
// paper's 4096-byte blocks):
//
//	sortplan -data 4G -memory 16M -d 5 -inter -simulate
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/disk"
	"repro/internal/plan"
)

func main() {
	var (
		data      = flag.String("data", "1G", "data size (blocks, or bytes with K/M/G suffix)")
		memory    = flag.String("memory", "4M", "memory size (blocks, or bytes with K/M/G suffix)")
		d         = flag.Int("d", 5, "input disks")
		inter     = flag.Bool("inter", true, "use inter-run prefetching in merge passes")
		simulate  = flag.Bool("simulate", false, "validate each pass against the simulator")
		calibrate = flag.Bool("calibrate", true, "score candidates by short simulations instead of closed forms")
		seed      = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	params := disk.PaperParams()
	dataBlocks, err := parseBlocks(*data, params.BlockBytes)
	if err != nil {
		fatal(err)
	}
	memBlocks, err := parseBlocks(*memory, params.BlockBytes)
	if err != nil {
		fatal(err)
	}

	job := plan.Job{
		TotalBlocks:  dataBlocks,
		MemoryBlocks: int(memBlocks),
		D:            *d,
		InterRun:     *inter,
		Disk:         params,
	}
	var p plan.Plan
	if *calibrate {
		p, err = plan.BuildCalibrated(job, *seed)
	} else {
		p, err = plan.Build(job)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(p)

	if !*simulate {
		return
	}
	fmt.Println("\nsimulated validation:")
	for i := range p.Passes {
		simT, res, err := p.SimulatePass(i, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  pass %d: simulated %.1fs (estimate %.1fs, overlap %.2f disks, success %.3f)\n",
			i, simT.Seconds(), p.Passes[i].Estimated.Seconds(),
			res.MeanConcurrencyWhenBusy, res.SuccessRatio())
	}
}

// parseBlocks interprets s as a block count, or as bytes when suffixed
// with K, M or G, converting at blockBytes per block.
func parseBlocks(s string, blockBytes int) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(0) // 0: plain block count
	switch {
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult = 1 << 30
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult = 1 << 20
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult = 1 << 10
	}
	if mult == 0 {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("sortplan: bad size %q", s)
		}
		return v, nil
	}
	v, err := strconv.ParseFloat(s[:len(s)-1], 64)
	if err != nil {
		return 0, fmt.Errorf("sortplan: bad size %q", s)
	}
	blocks := int64(v * float64(mult) / float64(blockBytes))
	if blocks < 1 {
		return 0, fmt.Errorf("sortplan: %q is less than one block", s)
	}
	return blocks, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sortplan:", err)
	os.Exit(1)
}
