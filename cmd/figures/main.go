// Command figures regenerates the paper's evaluation figures and the
// validation tables. Each experiment writes an aligned text rendering
// (plus an ASCII chart for figures) to stdout and, with -csv, one CSV
// file per figure into the output directory.
//
// Usage:
//
//	figures                  # run everything at paper fidelity (5 trials)
//	figures -fig 3.2a        # one experiment
//	figures -quick           # coarse grids, 1 trial (fast smoke run)
//	figures -csv -out ./out  # also write CSV files
//	figures -list            # list experiment ids
//	figures -parallel=false  # serial reference mode (identical output)
//
// By default every layer fans out on the parallel sweep executor:
// independent experiment specs run concurrently, and each spec's
// simulation points × trials saturate GOMAXPROCS workers. Results are
// collected by index, so stdout, CSV and SVG artifacts are byte-identical
// to -parallel=false (only the wall-clock timings differ).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/table"
)

func main() {
	var (
		fig    = flag.String("fig", "", "experiment id to run (default: all)")
		trials = flag.Int("trials", 5, "independent trials per point")
		seed   = flag.Uint64("seed", 1, "base random seed")
		quick  = flag.Bool("quick", false, "coarse grids and a single trial")
		csv    = flag.Bool("csv", false, "write CSV files for figures")
		svg    = flag.Bool("svg", false, "write SVG plots for figures")
		out    = flag.String("out", "figures-out", "CSV output directory")
		chart  = flag.Bool("chart", true, "render ASCII charts for figures")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		verify = flag.Bool("verify", false, "compare regenerated figures against reference CSVs in -out (regression check)")
		par    = flag.Bool("parallel", true, "fan specs and sweep points out across GOMAXPROCS workers (output is byte-identical either way)")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-20s %s\n", s.ID, s.Title)
		}
		return
	}

	opts := experiments.Options{Trials: *trials, Seed: *seed, Quick: *quick}
	if *quick {
		opts.Trials = 1
	}
	if !*par {
		opts.Workers = 1
	}

	specs := experiments.All()
	if *fig != "" {
		spec, err := experiments.Find(*fig)
		if err != nil {
			fatal(err)
		}
		specs = []experiments.Spec{spec}
	}

	if *csv || *svg {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	// Running and rendering are split so that -parallel can overlap the
	// simulation work of independent specs while stdout and artifacts are
	// still emitted strictly in spec order. With -parallel=false each spec
	// runs inline right before it is rendered (the serial reference mode).
	type specRun struct {
		out  experiments.Output
		took time.Duration
	}
	runOne := func(i int) (specRun, error) {
		start := time.Now()
		out, err := specs[i].Run(opts)
		if err != nil {
			return specRun{}, fmt.Errorf("%s: %w", specs[i].ID, err)
		}
		return specRun{out: out, took: time.Since(start)}, nil
	}
	var runs []specRun
	if *par {
		var err error
		runs, err = parallel.Map(len(specs), 0, runOne)
		if err != nil {
			fatal(err)
		}
	}

	failures := 0
	var svgFiles []string
	for i, spec := range specs {
		fmt.Printf("== %s: %s\n", spec.ID, spec.Title)
		run := specRun{}
		if *par {
			run = runs[i]
		} else {
			var err error
			run, err = runOne(i)
			if err != nil {
				fatal(err)
			}
		}
		output := run.out
		for _, f := range output.Figures {
			if *verify {
				name := filepath.Join(*out, "fig-"+sanitize(f.ID)+".csv")
				switch err := verifyCSV(name, f); {
				case err == nil:
					fmt.Printf("  verify %s: OK\n", f.ID)
				case os.IsNotExist(err):
					fmt.Printf("  verify %s: no reference (%s), skipped\n", f.ID, name)
				default:
					failures++
					fmt.Printf("  verify %s: MISMATCH: %v\n", f.ID, err)
				}
				continue
			}
			if err := f.WriteText(os.Stdout); err != nil {
				fatal(err)
			}
			if *chart {
				if err := f.WriteASCIIChart(os.Stdout, 72, 18); err != nil {
					fatal(err)
				}
			}
			if *csv {
				name := filepath.Join(*out, "fig-"+sanitize(f.ID)+".csv")
				if err := writeCSV(name, f); err != nil {
					fatal(err)
				}
				fmt.Printf("  wrote %s\n", name)
			}
			if *svg {
				name := filepath.Join(*out, "fig-"+sanitize(f.ID)+".svg")
				if err := writeSVG(name, f); err != nil {
					fatal(err)
				}
				svgFiles = append(svgFiles, filepath.Base(name))
				fmt.Printf("  wrote %s\n", name)
			}
		}
		if !*verify {
			for _, t := range output.Tables {
				if err := t.WriteText(os.Stdout); err != nil {
					fatal(err)
				}
			}
		}
		fmt.Printf("-- %s done in %v\n\n", spec.ID, run.took.Round(time.Millisecond))
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d figure(s) diverged from their references", failures))
	}
	if *svg && len(svgFiles) > 0 {
		name := filepath.Join(*out, "index.html")
		if err := writeGallery(name, svgFiles); err != nil {
			fatal(err)
		}
		fmt.Printf("gallery: %s\n", name)
	}
}

// writeGallery emits a minimal HTML page embedding every SVG plot.
func writeGallery(name string, files []string) error {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">")
	sb.WriteString("<title>mergesim figures</title></head>\n<body>\n")
	sb.WriteString("<h1>Prefetching with Multiple Disks for External Mergesort — regenerated figures</h1>\n")
	for _, f := range files {
		fmt.Fprintf(&sb, "<p><img src=%q alt=%q></p>\n", f, f)
	}
	sb.WriteString("</body></html>\n")
	return os.WriteFile(name, []byte(sb.String()), 0o644)
}

// verifyCSV regenerates f's CSV in memory and compares it cell by cell
// against the reference file: headers must match exactly, numeric cells
// within a small relative tolerance (the simulation is deterministic,
// so anything beyond float formatting indicates a behavioural change).
func verifyCSV(refPath string, f *table.Figure) error {
	ref, err := os.ReadFile(refPath)
	if err != nil {
		return err
	}
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		return err
	}
	refLines := strings.Split(strings.TrimSpace(string(ref)), "\n")
	gotLines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(refLines) != len(gotLines) {
		return fmt.Errorf("row count %d != reference %d", len(gotLines), len(refLines))
	}
	for i := range refLines {
		refCells := strings.Split(refLines[i], ",")
		gotCells := strings.Split(gotLines[i], ",")
		if len(refCells) != len(gotCells) {
			return fmt.Errorf("row %d: column count differs", i)
		}
		for j := range refCells {
			if refCells[j] == gotCells[j] {
				continue
			}
			rv, rerr := strconv.ParseFloat(refCells[j], 64)
			gv, gerr := strconv.ParseFloat(gotCells[j], 64)
			if rerr != nil || gerr != nil {
				return fmt.Errorf("row %d col %d: %q != reference %q", i, j, gotCells[j], refCells[j])
			}
			tol := 1e-6 * (1 + abs(rv))
			if diff := gv - rv; diff > tol || diff < -tol {
				return fmt.Errorf("row %d col %d: %v != reference %v", i, j, gv, rv)
			}
		}
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func writeSVG(name string, f *table.Figure) error {
	file, err := os.Create(name)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.WriteSVG(file, 720, 460); err != nil {
		return err
	}
	return file.Close()
}

func writeCSV(name string, f *table.Figure) error {
	file, err := os.Create(name)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.WriteCSV(file); err != nil {
		return err
	}
	return file.Close()
}

func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
			return r
		default:
			return '-'
		}
	}, id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
