// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document: one entry per benchmark keyed by name
// (the -N GOMAXPROCS suffix stripped), carrying iterations, ns/op, and
// every custom metric the benchmark reported (sim-seconds, overlap,
// success, B/op, allocs/op, ...).
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -out BENCH_2.json
//	benchjson -compare BENCH_1.json BENCH_2.json
//
// The emitted file is the repo's performance ledger: committed once per
// optimization PR so regressions show up as diffs. -compare renders the
// before/after delta table between two ledgers (ns/op and allocs/op per
// benchmark) and flags every regression beyond 10%.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's parsed result line.
type entry struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default: stdout)")
	compare := flag.Bool("compare", false, "compare two ledger files (args: before.json after.json) instead of parsing stdin")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two ledger files, got %d args", flag.NArg()))
		}
		before, err := readLedger(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		after, err := readLedger(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		writeComparison(os.Stdout, flag.Arg(0), flag.Arg(1), before, after)
		return
	}

	results := make(map[string]entry)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the terminal
		name, e, ok := parseLine(line)
		if !ok {
			continue
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkKernelEvents-8   97561804   11.88 ns/op   0 B/op   0 allocs/op
//	BenchmarkMergeInterUnsync-8   30   38ms/op   0.94 overlap   27.4 sim-seconds
//
// Unit pairs after ns/op land in Metrics under their unit name.
func parseLine(line string) (string, entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", entry{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -N parallelism suffix iff numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	name = strings.TrimPrefix(name, "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", entry{}, false
	}
	e := entry{Iterations: iters}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", entry{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			e.NsPerOp = v
			continue
		}
		if e.Metrics == nil {
			e.Metrics = make(map[string]float64)
		}
		e.Metrics[unit] = v
	}
	return name, e, true
}

// readLedger loads one benchmark ledger previously written by -out.
func readLedger(path string) (map[string]entry, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results map[string]entry
	if err := json.Unmarshal(buf, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}

// regressionThreshold is the relative slowdown (ns/op) or allocation
// growth (allocs/op) beyond which a delta is flagged as a regression.
const regressionThreshold = 0.10

// writeComparison renders the before/after delta table between two
// ledgers: one row per benchmark present in either file, with ns/op and
// allocs/op side by side and the relative time delta. Rows whose time
// or allocation count regressed by more than regressionThreshold are
// flagged; the flagged count is summarized on the last line.
func writeComparison(w io.Writer, beforePath, afterPath string, before, after map[string]entry) {
	names := make([]string, 0, len(before)+len(after))
	seen := make(map[string]bool, len(before)+len(after))
	for n := range before {
		names = append(names, n)
		seen[n] = true
	}
	for n := range after {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "benchmark comparison: %s -> %s (flagging >%.0f%% regressions)\n",
		beforePath, afterPath, regressionThreshold*100)
	fmt.Fprintf(w, "%-32s %14s %14s %9s %12s %12s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "flags")
	regressions := 0
	for _, n := range names {
		b, inBefore := before[n]
		a, inAfter := after[n]
		switch {
		case !inBefore:
			fmt.Fprintf(w, "%-32s %14s %14s %9s %12s %12s  added\n",
				n, "-", fmtNs(a.NsPerOp), "-", "-", fmtAllocs(a, inAfter))
			continue
		case !inAfter:
			fmt.Fprintf(w, "%-32s %14s %14s %9s %12s %12s  removed\n",
				n, fmtNs(b.NsPerOp), "-", "-", fmtAllocs(b, inBefore), "-")
			continue
		}
		var flags []string
		delta := "-"
		if b.NsPerOp > 0 {
			rel := (a.NsPerOp - b.NsPerOp) / b.NsPerOp
			delta = fmt.Sprintf("%+.1f%%", rel*100)
			if rel > regressionThreshold {
				flags = append(flags, "TIME-REGRESSION")
			}
		}
		ba, bok := b.Metrics["allocs/op"]
		aa, aok := a.Metrics["allocs/op"]
		if bok && aok && aa > ba && (ba == 0 || (aa-ba)/ba > regressionThreshold) {
			flags = append(flags, "ALLOC-REGRESSION")
		}
		if len(flags) > 0 {
			regressions++
		}
		fmt.Fprintf(w, "%-32s %14s %14s %9s %12s %12s  %s\n",
			n, fmtNs(b.NsPerOp), fmtNs(a.NsPerOp), delta,
			fmtAllocs(b, inBefore), fmtAllocs(a, inAfter), strings.Join(flags, ","))
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d benchmark(s) regressed beyond %.0f%%\n", regressions, regressionThreshold*100)
	} else {
		fmt.Fprintln(w, "no regressions beyond threshold")
	}
}

func fmtNs(v float64) string {
	if v >= 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

func fmtAllocs(e entry, present bool) string {
	if !present {
		return "-"
	}
	v, ok := e.Metrics["allocs/op"]
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
