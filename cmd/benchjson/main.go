// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document: one entry per benchmark keyed by name
// (the -N GOMAXPROCS suffix stripped), carrying iterations, ns/op, and
// every custom metric the benchmark reported (sim-seconds, overlap,
// success, B/op, allocs/op, ...).
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -out BENCH_1.json
//
// The emitted file is the repo's performance ledger: committed once per
// optimization PR so regressions show up as diffs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// entry is one benchmark's parsed result line.
type entry struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default: stdout)")
	flag.Parse()

	results := make(map[string]entry)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the terminal
		name, e, ok := parseLine(line)
		if !ok {
			continue
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkKernelEvents-8   97561804   11.88 ns/op   0 B/op   0 allocs/op
//	BenchmarkMergeInterUnsync-8   30   38ms/op   0.94 overlap   27.4 sim-seconds
//
// Unit pairs after ns/op land in Metrics under their unit name.
func parseLine(line string) (string, entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", entry{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -N parallelism suffix iff numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	name = strings.TrimPrefix(name, "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", entry{}, false
	}
	e := entry{Iterations: iters}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", entry{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			e.NsPerOp = v
			continue
		}
		if e.Metrics == nil {
			e.Metrics = make(map[string]float64)
		}
		e.Metrics[unit] = v
	}
	return name, e, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
