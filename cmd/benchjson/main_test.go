package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, e, ok := parseLine("BenchmarkKernelEvents-8  \t 97561804\t        11.88 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if name != "KernelEvents" {
		t.Fatalf("name = %q", name)
	}
	if e.Iterations != 97561804 || e.NsPerOp != 11.88 {
		t.Fatalf("entry = %+v", e)
	}
	if e.Metrics["B/op"] != 0 || e.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics = %v", e.Metrics)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	name, e, ok := parseLine("BenchmarkMergeInterUnsync-4   30   38123456 ns/op   0.94 overlap   27.42 sim-seconds   1.00 success")
	if !ok {
		t.Fatal("line rejected")
	}
	if name != "MergeInterUnsync" {
		t.Fatalf("name = %q", name)
	}
	if e.Metrics["overlap"] != 0.94 || e.Metrics["sim-seconds"] != 27.42 || e.Metrics["success"] != 1 {
		t.Fatalf("metrics = %v", e.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.3s",
		"BenchmarkBroken-8 notanumber 1 ns/op",
		"",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Fatalf("noise accepted: %q", line)
		}
	}
}

func TestWriteComparison(t *testing.T) {
	before := map[string]entry{
		"DiskRequest":   {Iterations: 100, NsPerOp: 3000, Metrics: map[string]float64{"allocs/op": 7}},
		"KernelEvents":  {Iterations: 100, NsPerOp: 100, Metrics: map[string]float64{"allocs/op": 0}},
		"MergeOldShape": {Iterations: 10, NsPerOp: 500},
		"Slowed":        {Iterations: 10, NsPerOp: 100, Metrics: map[string]float64{"allocs/op": 0}},
	}
	after := map[string]entry{
		"DiskRequest":  {Iterations: 100, NsPerOp: 60, Metrics: map[string]float64{"allocs/op": 0}},
		"KernelEvents": {Iterations: 100, NsPerOp: 101, Metrics: map[string]float64{"allocs/op": 0}},
		"Slowed":       {Iterations: 10, NsPerOp: 150, Metrics: map[string]float64{"allocs/op": 2}},
		"NewBench":     {Iterations: 10, NsPerOp: 42, Metrics: map[string]float64{"allocs/op": 1}},
	}
	var sb strings.Builder
	writeComparison(&sb, "BENCH_1.json", "BENCH_2.json", before, after)
	out := sb.String()

	for _, want := range []string{
		"DiskRequest", "-98.0%", // the improvement row, unflagged
		"NewBench", "added",
		"MergeOldShape", "removed",
		"TIME-REGRESSION", "ALLOC-REGRESSION", // Slowed: +50% time, 0 -> 2 allocs
		"1 benchmark(s) regressed beyond 10%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DiskRequest") && strings.Contains(out, "DiskRequest   ") {
		line := out[strings.Index(out, "DiskRequest"):]
		line = line[:strings.Index(line, "\n")]
		if strings.Contains(line, "REGRESSION") {
			t.Errorf("improvement row wrongly flagged: %s", line)
		}
	}
}

func TestWriteComparisonNoRegressions(t *testing.T) {
	ledger := map[string]entry{
		"A": {Iterations: 1, NsPerOp: 100, Metrics: map[string]float64{"allocs/op": 3}},
	}
	var sb strings.Builder
	writeComparison(&sb, "a.json", "b.json", ledger, ledger)
	if !strings.Contains(sb.String(), "no regressions beyond threshold") {
		t.Errorf("identical ledgers should report no regressions:\n%s", sb.String())
	}
}
