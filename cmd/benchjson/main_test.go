package main

import "testing"

func TestParseLine(t *testing.T) {
	name, e, ok := parseLine("BenchmarkKernelEvents-8  \t 97561804\t        11.88 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if name != "KernelEvents" {
		t.Fatalf("name = %q", name)
	}
	if e.Iterations != 97561804 || e.NsPerOp != 11.88 {
		t.Fatalf("entry = %+v", e)
	}
	if e.Metrics["B/op"] != 0 || e.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics = %v", e.Metrics)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	name, e, ok := parseLine("BenchmarkMergeInterUnsync-4   30   38123456 ns/op   0.94 overlap   27.42 sim-seconds   1.00 success")
	if !ok {
		t.Fatal("line rejected")
	}
	if name != "MergeInterUnsync" {
		t.Fatalf("name = %q", name)
	}
	if e.Metrics["overlap"] != 0.94 || e.Metrics["sim-seconds"] != 27.42 || e.Metrics["success"] != 1 {
		t.Fatalf("metrics = %v", e.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.3s",
		"BenchmarkBroken-8 notanumber 1 ns/op",
		"",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Fatalf("noise accepted: %q", line)
		}
	}
}
