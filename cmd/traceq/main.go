// Command traceq queries a merge execution trace: it builds the
// internal/explain attribution report — where the makespan went per
// disk and phase, which disk each CPU stall was waiting on, queue and
// cache distributions, and the top stall chains — and renders it as
// text, JSON, or an SVG timeline.
//
// It works from either source:
//
//	traceq -trace run.csv                 # a mergesim -trace -trace-format csv export ("-" = stdin)
//	traceq -k 25 -d 5 -n 10 -inter        # simulate the config, then explain it
//
// Useful flags: -json for the machine-readable report, -svg FILE for
// the timeline, -top N for more chains, -check to exit nonzero when the
// conservation invariant fails (truncated or inconsistent trace).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/explain"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		traceIn  = flag.String("trace", "", "read a CSV trace export instead of simulating (\"-\" = stdin)")
		makespan = flag.Float64("makespan-ms", 0, "with -trace: the run's makespan in ms (0 = infer from the last span)")

		k         = flag.Int("k", 25, "number of sorted runs")
		d         = flag.Int("d", 5, "number of input disks")
		n         = flag.Int("n", 1, "intra-run prefetch depth N")
		blocks    = flag.Int("blocks", 1000, "blocks per run")
		inter     = flag.Bool("inter", false, "enable inter-run prefetching")
		sync      = flag.Bool("sync", false, "synchronized prefetching")
		cacheSize = flag.Int("cache", 0, "cache size in blocks (0 = natural size; -1 = unlimited)")
		mergeMs   = flag.Float64("merge-ms", 0, "CPU time to merge one block, in ms")
		seed      = flag.Uint64("seed", 1, "random seed")
		greedy    = flag.Bool("greedy", false, "greedy cache admission")
		schedule  = flag.String("schedule", "fcfs", "disk queue discipline: fcfs, sstf, scan")
		placement = flag.String("placement", "round-robin", "run placement: round-robin, clustered, striped")
		traceMax  = flag.Int("trace-events", 0, "cap on recorded trace events (0 = default 1M)")

		jsonOut = flag.Bool("json", false, "emit the report as JSON instead of text")
		svgOut  = flag.String("svg", "", "also write an SVG timeline to this file")
		topN    = flag.Int("top", 5, "number of stall chains to extract")
		check   = flag.Bool("check", false, "verify the conservation invariant; exit 1 on violation")
	)
	flag.Parse()

	var (
		rec       *trace.Recorder
		ms        = sim.Ms(*makespan)
		stallTime sim.Time
		haveStall bool
	)
	if *traceIn != "" {
		var err error
		rec, err = readTrace(*traceIn)
		if err != nil {
			fatal(err)
		}
	} else {
		cfg, err := buildConfig(*k, *d, *n, *blocks, *inter, *sync, *cacheSize,
			*mergeMs, *seed, *greedy, *schedule, *placement)
		if err != nil {
			fatal(err)
		}
		cfg.Trace = trace.New(*traceMax)
		aggs, err := core.RunGrid([]core.Config{cfg}, 1, 1)
		if err != nil {
			fatal(err)
		}
		rec = cfg.Trace
		ms = aggs[0].Results[0].TotalTime
		stallTime = aggs[0].Results[0].StallTime
		haveStall = true
	}
	if rec.Truncated() {
		fmt.Fprintln(os.Stderr, "traceq: warning: trace hit its event cap and is truncated; the report is incomplete")
	}

	rep := explain.Build(rec, explain.Options{Makespan: ms, TopChains: *topN})

	if *check {
		st := rep.Stall.Total
		if haveStall {
			st = stallTime
		}
		if err := rep.Check(st); err != nil {
			fmt.Fprintf(os.Stderr, "traceq: conservation violated: %v\n", err)
			os.Exit(1)
		}
	}

	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		if err := explain.WriteTimelineSVG(f, rec, rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
}

// readTrace loads a CSV export from a file or stdin.
func readTrace(path string) (*trace.Recorder, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return trace.ReadCSV(r)
}

// buildConfig mirrors mergesim's flag-to-config mapping for the subset
// traceq accepts.
func buildConfig(k, d, n, blocks int, inter, sync bool, cacheSize int,
	mergeMs float64, seed uint64, greedy bool, schedule, placement string) (core.Config, error) {
	cfg := core.Default()
	cfg.K = k
	cfg.D = d
	cfg.N = n
	cfg.BlocksPerRun = blocks
	cfg.InterRun = inter
	cfg.Synchronized = sync
	cfg.MergeTimePerBlock = sim.Ms(mergeMs)
	cfg.Seed = seed
	switch cacheSize {
	case 0:
		cfg.CacheBlocks = cfg.DefaultCache()
	case -1:
		cfg.CacheBlocks = cache.Unlimited
	default:
		cfg.CacheBlocks = cacheSize
	}
	if greedy {
		cfg.Admission = cache.Greedy
	}
	switch schedule {
	case "fcfs":
		cfg.Disk.Discipline = disk.FCFS
	case "sstf":
		cfg.Disk.Discipline = disk.SSTF
	case "scan":
		cfg.Disk.Discipline = disk.SCAN
	default:
		return cfg, fmt.Errorf("unknown discipline %q", schedule)
	}
	switch placement {
	case "round-robin":
		cfg.Placement = layout.RoundRobin
	case "clustered":
		cfg.Placement = layout.Clustered
	case "striped":
		cfg.Placement = layout.Striped
	default:
		return cfg, fmt.Errorf("unknown placement %q", placement)
	}
	return cfg, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "traceq: %v\n", err)
	os.Exit(1)
}
