// Command mergesim simulates one merge configuration and reports its
// metrics, including the closed-form predictions where they apply.
//
// Example: the paper's headline comparison at k=25, D=5, N=10:
//
//	mergesim -k 25 -d 5 -n 10                 # intra-run, unsynchronized
//	mergesim -k 25 -d 5 -n 10 -inter          # + inter-run prefetching
//	mergesim -k 25 -d 5 -n 10 -inter -sync    # synchronized variant
//	mergesim -k 25 -d 5 -n 10 -inter -cache 500 -trials 5
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/trace"
)

func main() {
	var (
		k         = flag.Int("k", 25, "number of sorted runs")
		d         = flag.Int("d", 5, "number of input disks")
		n         = flag.Int("n", 1, "intra-run prefetch depth N")
		blocks    = flag.Int("blocks", 1000, "blocks per run")
		inter     = flag.Bool("inter", false, "enable inter-run prefetching (all disks one run)")
		sync      = flag.Bool("sync", false, "synchronized prefetching (CPU waits for whole batch)")
		cacheSize = flag.Int("cache", 0, "cache size in blocks (0 = natural size; -1 = unlimited)")
		mergeMs   = flag.Float64("merge-ms", 0, "CPU time to merge one block, in ms (0 = infinitely fast)")
		trials    = flag.Int("trials", 1, "independent trials")
		workers   = flag.Int("workers", 0, "worker goroutines for multi-trial runs (0 = GOMAXPROCS, 1 = serial; results are identical)")
		seed      = flag.Uint64("seed", 1, "random seed")
		greedy    = flag.Bool("greedy", false, "greedy cache admission instead of all-or-demand")
		schedule  = flag.String("schedule", "fcfs", "disk queue discipline: fcfs, sstf, scan")
		placement = flag.String("placement", "round-robin", "run placement: round-robin, clustered, striped")
		verbose   = flag.Bool("v", false, "print per-disk statistics")
		ganttMs   = flag.Float64("gantt-ms", 0, "render a disk-busy Gantt chart for the first N ms of trial 1")
		jsonOut   = flag.Bool("json", false, "emit results as JSON instead of text")
		reqLog    = flag.String("reqlog", "", "write a JSONL log of every disk request (trial 1) to this file")
		traceOut  = flag.String("trace", "", "write an execution trace of trial 1 to this file")
		traceFmt  = flag.String("trace-format", "chrome", "trace format: chrome (Perfetto/chrome://tracing JSON) or csv")
		traceMax  = flag.Int("trace-events", 0, "cap on recorded trace events (0 = default 1M; past it the trace truncates)")
		engine    = flag.String("engine", "event", "engine implementation: event (state machine) or process (goroutine shim); results are byte-identical")

		faultDisk     = flag.Int("fault-disk", -1, "disk index to inject faults into (-1 = none)")
		faultSlowdown = flag.Float64("fault-slowdown", 0, "fail-slow service-time multiplier for the faulted disk (>= 1)")
		faultSlowAt   = flag.Float64("fault-slowdown-at-ms", 0, "simulated instant the slowdown phases in, in ms (0 = from the start)")
		faultErrProb  = flag.Float64("fault-error-prob", 0, "per-request transient read-error probability on the faulted disk")
		faultRetries  = flag.Int("fault-retries", 0, "re-read cap per request (0 = default 3); exhausting it aborts with an unreadable-disk error")
		faultOutage   = flag.String("fault-outage", "", "outage windows for the faulted disk, \"start:end[,start:end]\" in ms")
	)
	flag.Parse()

	switch *engine {
	case "event":
		core.SetEngineMode(core.EngineEvent)
	case "process":
		core.SetEngineMode(core.EngineProcess)
	default:
		fmt.Fprintf(os.Stderr, "mergesim: unknown -engine %q (want event or process)\n", *engine)
		os.Exit(2)
	}

	cfg := core.Default()
	cfg.K = *k
	cfg.D = *d
	cfg.N = *n
	cfg.BlocksPerRun = *blocks
	cfg.InterRun = *inter
	cfg.Synchronized = *sync
	cfg.MergeTimePerBlock = sim.Ms(*mergeMs)
	cfg.Seed = *seed
	switch *cacheSize {
	case 0:
		cfg.CacheBlocks = cfg.DefaultCache()
	case -1:
		cfg.CacheBlocks = cache.Unlimited
	default:
		cfg.CacheBlocks = *cacheSize
	}
	if *greedy {
		cfg.Admission = cache.Greedy
	}
	switch *schedule {
	case "fcfs":
		cfg.Disk.Discipline = disk.FCFS
	case "sstf":
		cfg.Disk.Discipline = disk.SSTF
	case "scan":
		cfg.Disk.Discipline = disk.SCAN
	default:
		fatal(fmt.Errorf("unknown discipline %q", *schedule))
	}
	switch *placement {
	case "round-robin":
		cfg.Placement = layout.RoundRobin
	case "clustered":
		cfg.Placement = layout.Clustered
	case "striped":
		cfg.Placement = layout.Striped
	default:
		fatal(fmt.Errorf("unknown placement %q", *placement))
	}

	if *faultDisk >= 0 {
		spec := faults.DiskSpec{
			Disk:          *faultDisk,
			Slowdown:      *faultSlowdown,
			SlowdownAtMs:  *faultSlowAt,
			ReadErrorProb: *faultErrProb,
			MaxRetries:    *faultRetries,
		}
		var err error
		if spec.Outages, err = parseOutages(*faultOutage); err != nil {
			fatal(err)
		}
		cfg.Faults = &faults.Spec{Disks: []faults.DiskSpec{spec}}
	} else if *faultSlowdown != 0 || *faultErrProb != 0 || *faultOutage != "" {
		fatal(fmt.Errorf("fault flags need -fault-disk to name the target disk"))
	}

	cfg.RecordTimeline = *ganttMs > 0
	var logFile *os.File
	var logBuf *bufio.Writer
	if *reqLog != "" {
		var err error
		logFile, err = os.Create(*reqLog)
		if err != nil {
			fatal(err)
		}
		logBuf = bufio.NewWriter(logFile)
		enc := json.NewEncoder(logBuf)
		cfg.OnRequest = func(tr disk.RequestTrace) {
			if err := enc.Encode(tr); err != nil {
				fatal(err)
			}
		}
		if *trials > 1 {
			fmt.Fprintln(os.Stderr, "mergesim: -reqlog forces a single trial")
			*trials = 1
		}
	}
	if *traceOut != "" {
		if *traceFmt != "chrome" && *traceFmt != "csv" {
			fatal(fmt.Errorf("unknown trace format %q (want chrome or csv)", *traceFmt))
		}
		cfg.Trace = trace.New(*traceMax)
		if *trials > 1 {
			fmt.Fprintln(os.Stderr, "mergesim: -trace forces a single trial")
			*trials = 1
		}
	}
	aggs, err := core.RunGrid([]core.Config{cfg}, *trials, *workers)
	if err != nil {
		fatal(err)
	}
	agg := aggs[0]
	if cfg.Trace != nil {
		if err := writeTrace(*traceOut, *traceFmt, cfg.Trace); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d events, format %s)\n",
			*traceOut, cfg.Trace.Len(), *traceFmt)
		if cfg.Trace.Truncated() {
			fmt.Fprintln(os.Stderr, "mergesim: trace truncated at the event cap; raise -trace-events for a full timeline")
		}
	}
	if logFile != nil {
		// A truncated request log is worse than no log: surface flush
		// and close errors (ENOSPC, I/O) with a non-zero exit.
		if err := logBuf.Flush(); err != nil {
			fatal(fmt.Errorf("reqlog %s: flush: %w", *reqLog, err))
		}
		if err := logFile.Close(); err != nil {
			fatal(fmt.Errorf("reqlog %s: close: %w", *reqLog, err))
		}
		fmt.Fprintf(os.Stderr, "request log written to %s\n", *reqLog)
	}

	if *jsonOut {
		emitJSON(agg, cfg.Trace != nil && cfg.Trace.Truncated())
		return
	}

	fmt.Printf("strategy       %s\n", cfg.StrategyName())
	fmt.Printf("shape          k=%d runs x %d blocks, D=%d disks, N=%d, cache=%s\n",
		cfg.K, cfg.BlocksPerRun, cfg.D, cfg.N, cacheStr(cfg.CacheBlocks))
	fmt.Printf("total time     %.3f s", agg.TotalTime.Mean())
	if *trials > 1 {
		fmt.Printf("  (±%.3f over %d trials)", agg.TotalTime.CI95(), *trials)
	}
	fmt.Println()
	fmt.Printf("success ratio  %.4f\n", agg.SuccessRatio.Mean())
	fmt.Printf("disk overlap   %.3f busy disks (given any busy)\n", agg.Concurrency.Mean())
	fmt.Printf("cpu stall      %.3f s\n", agg.StallTime.Mean())
	if f := agg.Results[0].Faults; f.Any() {
		fmt.Printf("faults         %d retries (%.3f s), outage wait %.3f s, slowdown %.3f s (trial 1)\n",
			f.Retries, f.RetryTime.Seconds(), f.OutageTime.Seconds(), f.SlowdownTime.Seconds())
	}

	printPredictions(cfg)

	if *verbose {
		res := agg.Results[0]
		fmt.Println("\nper-disk (trial 1):")
		for i, ds := range res.PerDisk {
			fmt.Printf("  disk %d: %d reqs, %d blocks, busy %.2fs, mean seek %.1f cyl, peak queue %d\n",
				i, ds.Requests, ds.Blocks, ds.BusyTime.Seconds(), ds.MeanSeekDistance(), ds.MaxQueueLen)
		}
		fmt.Printf("  cache peak occupancy: %d blocks\n", res.CachePeak)
	}

	if *ganttMs > 0 {
		res := agg.Results[0]
		fmt.Printf("\ndisk busy timeline, first %.0f ms (trial 1):\n", *ganttMs)
		var rows []table.GanttRow
		for i, ivs := range res.Timeline {
			label := fmt.Sprintf("disk %d", i)
			if i >= cfg.D {
				label = fmt.Sprintf("write %d", i-cfg.D)
			}
			row := table.GanttRow{Label: label}
			for _, iv := range ivs {
				row.Intervals = append(row.Intervals,
					[2]float64{iv.Start.Milliseconds(), iv.End.Milliseconds()})
			}
			rows = append(rows, row)
		}
		if err := table.WriteGantt(os.Stdout, rows, 0, *ganttMs, 80); err != nil {
			fatal(err)
		}
	}
}

// emitJSON writes the shared machine-readable result schema
// (core.ResultJSON) — the same document `simd` serves, so scripted
// consumers can switch between the CLI and the daemon freely. A traced
// run that hit its event cap flags trace_truncated, mirroring the
// stderr warning for consumers that only read stdout.
func emitJSON(agg core.Aggregate, traceTruncated bool) {
	doc := core.NewResultJSON(agg)
	doc.TraceTruncated = traceTruncated
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// printPredictions prints the applicable closed-form expression(s).
func printPredictions(cfg core.Config) {
	m := analysis.FromConfig(cfg.Disk, cfg.K, cfg.D, cfg.N, cfg.BlocksPerRun)
	b := cfg.BlocksPerRun
	switch {
	case !cfg.InterRun && cfg.D == 1 && cfg.N == 1:
		fmt.Printf("analytic       eq(1) predicts %.3f s\n", m.TotalTime(m.Eq1NoPrefetchSingleDisk(), b).Seconds())
	case !cfg.InterRun && cfg.D == 1:
		fmt.Printf("analytic       eq(2) predicts %.3f s\n", m.TotalTime(m.Eq2IntraSingleDisk(), b).Seconds())
	case !cfg.InterRun && cfg.N == 1:
		fmt.Printf("analytic       eq(3) predicts %.3f s\n", m.TotalTime(m.Eq3NoPrefetchMultiDisk(), b).Seconds())
	case !cfg.InterRun && cfg.Synchronized:
		fmt.Printf("analytic       eq(4) predicts %.3f s\n", m.TotalTime(m.Eq4IntraMultiDiskSync(), b).Seconds())
	case !cfg.InterRun:
		fmt.Printf("analytic       eq(4)/urn-game asymptote %.3f s (large N)\n",
			m.IntraUnsyncAsymptotic(b).Seconds())
	case cfg.Synchronized:
		fmt.Printf("analytic       eq(5) predicts %.3f s (ample cache)\n", m.TotalTime(m.Eq5InterMultiDiskSync(), b).Seconds())
	default:
		fmt.Printf("analytic       lower bound kTB/D = %.3f s\n", m.MultiDiskFloor(b).Seconds())
	}
}

// writeTrace exports the recorded trace, surfacing flush and close
// errors with a non-zero exit — a truncated trace file loads as garbage
// in Perfetto.
func writeTrace(path, format string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	buf := bufio.NewWriter(f)
	if format == "csv" {
		err = rec.WriteCSV(buf)
	} else {
		err = rec.WriteChrome(buf)
	}
	if err == nil {
		err = buf.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace %s: %w", path, err)
	}
	return nil
}

// parseOutages parses "start:end[,start:end]" (milliseconds) into
// outage windows; validation of ordering happens in cfg.Validate.
func parseOutages(s string) ([]faults.Window, error) {
	if s == "" {
		return nil, nil
	}
	var out []faults.Window
	for _, part := range strings.Split(s, ",") {
		var w faults.Window
		if _, err := fmt.Sscanf(part, "%f:%f", &w.StartMs, &w.EndMs); err != nil {
			return nil, fmt.Errorf("outage %q: want start:end in ms", part)
		}
		out = append(out, w)
	}
	return out, nil
}

func cacheStr(c int) string {
	if c == cache.Unlimited {
		return "unlimited"
	}
	return fmt.Sprintf("%d blocks", c)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mergesim:", err)
	os.Exit(1)
}
