// Command mergesim simulates one merge configuration and reports its
// metrics, including the closed-form predictions where they apply.
//
// Example: the paper's headline comparison at k=25, D=5, N=10:
//
//	mergesim -k 25 -d 5 -n 10                 # intra-run, unsynchronized
//	mergesim -k 25 -d 5 -n 10 -inter          # + inter-run prefetching
//	mergesim -k 25 -d 5 -n 10 -inter -sync    # synchronized variant
//	mergesim -k 25 -d 5 -n 10 -inter -cache 500 -trials 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/table"
)

func main() {
	var (
		k         = flag.Int("k", 25, "number of sorted runs")
		d         = flag.Int("d", 5, "number of input disks")
		n         = flag.Int("n", 1, "intra-run prefetch depth N")
		blocks    = flag.Int("blocks", 1000, "blocks per run")
		inter     = flag.Bool("inter", false, "enable inter-run prefetching (all disks one run)")
		sync      = flag.Bool("sync", false, "synchronized prefetching (CPU waits for whole batch)")
		cacheSize = flag.Int("cache", 0, "cache size in blocks (0 = natural size; -1 = unlimited)")
		mergeMs   = flag.Float64("merge-ms", 0, "CPU time to merge one block, in ms (0 = infinitely fast)")
		trials    = flag.Int("trials", 1, "independent trials")
		workers   = flag.Int("workers", 0, "worker goroutines for multi-trial runs (0 = GOMAXPROCS, 1 = serial; results are identical)")
		seed      = flag.Uint64("seed", 1, "random seed")
		greedy    = flag.Bool("greedy", false, "greedy cache admission instead of all-or-demand")
		schedule  = flag.String("schedule", "fcfs", "disk queue discipline: fcfs, sstf, scan")
		placement = flag.String("placement", "round-robin", "run placement: round-robin, clustered, striped")
		verbose   = flag.Bool("v", false, "print per-disk statistics")
		ganttMs   = flag.Float64("gantt-ms", 0, "render a disk-busy Gantt chart for the first N ms of trial 1")
		jsonOut   = flag.Bool("json", false, "emit results as JSON instead of text")
		reqLog    = flag.String("reqlog", "", "write a JSONL log of every disk request (trial 1) to this file")
	)
	flag.Parse()

	cfg := core.Default()
	cfg.K = *k
	cfg.D = *d
	cfg.N = *n
	cfg.BlocksPerRun = *blocks
	cfg.InterRun = *inter
	cfg.Synchronized = *sync
	cfg.MergeTimePerBlock = sim.Ms(*mergeMs)
	cfg.Seed = *seed
	switch *cacheSize {
	case 0:
		cfg.CacheBlocks = cfg.DefaultCache()
	case -1:
		cfg.CacheBlocks = cache.Unlimited
	default:
		cfg.CacheBlocks = *cacheSize
	}
	if *greedy {
		cfg.Admission = cache.Greedy
	}
	switch *schedule {
	case "fcfs":
		cfg.Disk.Discipline = disk.FCFS
	case "sstf":
		cfg.Disk.Discipline = disk.SSTF
	case "scan":
		cfg.Disk.Discipline = disk.SCAN
	default:
		fatal(fmt.Errorf("unknown discipline %q", *schedule))
	}
	switch *placement {
	case "round-robin":
		cfg.Placement = layout.RoundRobin
	case "clustered":
		cfg.Placement = layout.Clustered
	case "striped":
		cfg.Placement = layout.Striped
	default:
		fatal(fmt.Errorf("unknown placement %q", *placement))
	}

	cfg.RecordTimeline = *ganttMs > 0
	var logFile *os.File
	if *reqLog != "" {
		var err error
		logFile, err = os.Create(*reqLog)
		if err != nil {
			fatal(err)
		}
		defer logFile.Close()
		enc := json.NewEncoder(logFile)
		cfg.OnRequest = func(tr disk.RequestTrace) {
			if err := enc.Encode(tr); err != nil {
				fatal(err)
			}
		}
		if *trials > 1 {
			fmt.Fprintln(os.Stderr, "mergesim: -reqlog forces a single trial")
			*trials = 1
		}
	}
	aggs, err := core.RunGrid([]core.Config{cfg}, *trials, *workers)
	if err != nil {
		fatal(err)
	}
	agg := aggs[0]
	if logFile != nil {
		fmt.Fprintf(os.Stderr, "request log written to %s\n", *reqLog)
	}

	if *jsonOut {
		emitJSON(cfg, agg)
		return
	}

	fmt.Printf("strategy       %s\n", cfg.StrategyName())
	fmt.Printf("shape          k=%d runs x %d blocks, D=%d disks, N=%d, cache=%s\n",
		cfg.K, cfg.BlocksPerRun, cfg.D, cfg.N, cacheStr(cfg.CacheBlocks))
	fmt.Printf("total time     %.3f s", agg.TotalTime.Mean())
	if *trials > 1 {
		fmt.Printf("  (±%.3f over %d trials)", agg.TotalTime.CI95(), *trials)
	}
	fmt.Println()
	fmt.Printf("success ratio  %.4f\n", agg.SuccessRatio.Mean())
	fmt.Printf("disk overlap   %.3f busy disks (given any busy)\n", agg.Concurrency.Mean())
	fmt.Printf("cpu stall      %.3f s\n", agg.StallTime.Mean())

	printPredictions(cfg)

	if *verbose {
		res := agg.Results[0]
		fmt.Println("\nper-disk (trial 1):")
		for i, ds := range res.PerDisk {
			fmt.Printf("  disk %d: %d reqs, %d blocks, busy %.2fs, mean seek %.1f cyl, peak queue %d\n",
				i, ds.Requests, ds.Blocks, ds.BusyTime.Seconds(), ds.MeanSeekDistance(), ds.MaxQueueLen)
		}
		fmt.Printf("  cache peak occupancy: %d blocks\n", res.CachePeak)
	}

	if *ganttMs > 0 {
		res := agg.Results[0]
		fmt.Printf("\ndisk busy timeline, first %.0f ms (trial 1):\n", *ganttMs)
		var rows []table.GanttRow
		for i, ivs := range res.Timeline {
			label := fmt.Sprintf("disk %d", i)
			if i >= cfg.D {
				label = fmt.Sprintf("write %d", i-cfg.D)
			}
			row := table.GanttRow{Label: label}
			for _, iv := range ivs {
				row.Intervals = append(row.Intervals,
					[2]float64{iv.Start.Milliseconds(), iv.End.Milliseconds()})
			}
			rows = append(rows, row)
		}
		if err := table.WriteGantt(os.Stdout, rows, 0, *ganttMs, 80); err != nil {
			fatal(err)
		}
	}
}

// emitJSON writes a machine-readable summary of the trials.
func emitJSON(cfg core.Config, agg core.Aggregate) {
	type diskJSON struct {
		Requests    int64   `json:"requests"`
		Blocks      int64   `json:"blocks"`
		BusySeconds float64 `json:"busy_seconds"`
		MeanSeekCyl float64 `json:"mean_seek_cylinders"`
		MaxQueueLen int     `json:"max_queue_len"`
	}
	type trialJSON struct {
		Seed          uint64     `json:"seed"`
		TotalSeconds  float64    `json:"total_seconds"`
		SuccessRatio  float64    `json:"success_ratio"`
		Overlap       float64    `json:"mean_busy_disks"`
		StallSeconds  float64    `json:"cpu_stall_seconds"`
		StallP95Ms    float64    `json:"stall_p95_ms"`
		MeanDepth     float64    `json:"mean_prefetch_depth"`
		CachePeak     int64      `json:"cache_peak_blocks"`
		MergedBlocks  int64      `json:"merged_blocks"`
		WrittenBlocks int64      `json:"written_blocks,omitempty"`
		Disks         []diskJSON `json:"disks"`
	}
	out := struct {
		Strategy     string      `json:"strategy"`
		K            int         `json:"k"`
		D            int         `json:"d"`
		N            int         `json:"n"`
		BlocksPerRun int         `json:"blocks_per_run"`
		CacheBlocks  int         `json:"cache_blocks"`
		Trials       int         `json:"trials"`
		MeanSeconds  float64     `json:"mean_total_seconds"`
		CI95Seconds  float64     `json:"ci95_total_seconds"`
		MeanSuccess  float64     `json:"mean_success_ratio"`
		Results      []trialJSON `json:"results"`
	}{
		Strategy:     cfg.StrategyName(),
		K:            cfg.K,
		D:            cfg.D,
		N:            cfg.N,
		BlocksPerRun: cfg.BlocksPerRun,
		CacheBlocks:  cfg.CacheBlocks,
		Trials:       agg.Trials,
		MeanSeconds:  agg.TotalTime.Mean(),
		CI95Seconds:  agg.TotalTime.CI95(),
		MeanSuccess:  agg.SuccessRatio.Mean(),
	}
	for _, r := range agg.Results {
		tj := trialJSON{
			Seed:          r.Config.Seed,
			TotalSeconds:  r.TotalTime.Seconds(),
			SuccessRatio:  r.SuccessRatio(),
			Overlap:       r.MeanConcurrencyWhenBusy,
			StallSeconds:  r.StallTime.Seconds(),
			StallP95Ms:    r.StallP95().Milliseconds(),
			MeanDepth:     r.MeanDepth,
			CachePeak:     r.CachePeak,
			MergedBlocks:  r.MergedBlocks,
			WrittenBlocks: r.WrittenBlocks,
		}
		for _, d := range r.PerDisk {
			tj.Disks = append(tj.Disks, diskJSON{
				Requests:    d.Requests,
				Blocks:      d.Blocks,
				BusySeconds: d.BusyTime.Seconds(),
				MeanSeekCyl: d.MeanSeekDistance(),
				MaxQueueLen: d.MaxQueueLen,
			})
		}
		out.Results = append(out.Results, tj)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// printPredictions prints the applicable closed-form expression(s).
func printPredictions(cfg core.Config) {
	m := analysis.FromConfig(cfg.Disk, cfg.K, cfg.D, cfg.N, cfg.BlocksPerRun)
	b := cfg.BlocksPerRun
	switch {
	case !cfg.InterRun && cfg.D == 1 && cfg.N == 1:
		fmt.Printf("analytic       eq(1) predicts %.3f s\n", m.TotalTime(m.Eq1NoPrefetchSingleDisk(), b).Seconds())
	case !cfg.InterRun && cfg.D == 1:
		fmt.Printf("analytic       eq(2) predicts %.3f s\n", m.TotalTime(m.Eq2IntraSingleDisk(), b).Seconds())
	case !cfg.InterRun && cfg.N == 1:
		fmt.Printf("analytic       eq(3) predicts %.3f s\n", m.TotalTime(m.Eq3NoPrefetchMultiDisk(), b).Seconds())
	case !cfg.InterRun && cfg.Synchronized:
		fmt.Printf("analytic       eq(4) predicts %.3f s\n", m.TotalTime(m.Eq4IntraMultiDiskSync(), b).Seconds())
	case !cfg.InterRun:
		fmt.Printf("analytic       eq(4)/urn-game asymptote %.3f s (large N)\n",
			m.IntraUnsyncAsymptotic(b).Seconds())
	case cfg.Synchronized:
		fmt.Printf("analytic       eq(5) predicts %.3f s (ample cache)\n", m.TotalTime(m.Eq5InterMultiDiskSync(), b).Seconds())
	default:
		fmt.Printf("analytic       lower bound kTB/D = %.3f s\n", m.MultiDiskFloor(b).Seconds())
	}
}

func cacheStr(c int) string {
	if c == cache.Unlimited {
		return "unlimited"
	}
	return fmt.Sprintf("%d blocks", c)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mergesim:", err)
	os.Exit(1)
}
