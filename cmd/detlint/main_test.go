package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module for the
// front-end to chew on and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fixmod\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// droppedCtx is a real ctxflow violation whose finding carries a
// suggested fix: context.Background() conjured while ctx is in scope.
const droppedCtx = `package fixmod

import "context"

func outer(ctx context.Context, keys chan string) {
	inner(context.Background(), keys)
}

func inner(ctx context.Context, keys chan string) {
	select {
	case <-ctx.Done():
	case <-keys:
	}
}
`

// TestFixRoundTrip drives the acceptance path end to end: a dirty tree
// reports the finding, -diff previews without touching it, -fix
// rewrites it, and the rerun comes back clean.
func TestFixRoundTrip(t *testing.T) {
	dir := writeModule(t, map[string]string{"flow.go": droppedCtx})
	args := []string{"-C", dir, "fixmod"}

	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("dirty tree: exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "context.Background() discards the received ctx") {
		t.Fatalf("missing ctxflow finding in output:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(append([]string{"-diff"}, args...), &stdout, &stderr); code != 1 {
		t.Fatalf("-diff: exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "+\tinner(ctx, keys)") {
		t.Fatalf("-diff does not preview the rewrite:\n%s", stdout.String())
	}
	if src, _ := os.ReadFile(filepath.Join(dir, "flow.go")); !strings.Contains(string(src), "context.Background()") {
		t.Fatal("-diff must not modify the file")
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(append([]string{"-fix"}, args...), &stdout, &stderr); code != 0 {
		t.Fatalf("-fix: exit %d, stdout %s stderr %s", code, stdout.String(), stderr.String())
	}
	src, err := os.ReadFile(filepath.Join(dir, "flow.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "inner(ctx, keys)") || strings.Contains(string(src), "context.Background()") {
		t.Fatalf("fix not applied:\n%s", src)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("fixed tree not clean: exit %d\n%s", code, stdout.String())
	}
}

// TestBaselineFlow pins the CI contract: -write-baseline accepts the
// current debt, -baseline subtracts exactly it, and a new finding
// still fails.
func TestBaselineFlow(t *testing.T) {
	dir := writeModule(t, map[string]string{"flow.go": droppedCtx})
	base := filepath.Join(dir, ".detlint-baseline")
	args := []string{"-C", dir, "fixmod"}

	var stdout, stderr bytes.Buffer
	if code := run(append([]string{"-write-baseline", base}, args...), &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline: exit %d, stderr %s", code, stderr.String())
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "flow.go\tctxflow\t") {
		t.Fatalf("baseline missing the accepted finding:\n%s", raw)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(append([]string{"-baseline", base}, args...), &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run should be clean: exit %d\n%s", code, stdout.String())
	}

	// A second violation is fresh debt: the baseline absorbs one
	// finding of this class, not the new one.
	grown := strings.Replace(droppedCtx, "\tinner(context.Background(), keys)\n",
		"\tinner(context.Background(), keys)\n\tinner(context.TODO(), keys)\n", 1)
	if err := os.WriteFile(filepath.Join(dir, "flow.go"), []byte(grown), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(append([]string{"-baseline", base}, args...), &stdout, &stderr); code != 1 {
		t.Fatalf("grown tree must fail against old baseline: exit %d\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "context.TODO() discards the received ctx") {
		t.Fatalf("fresh finding not reported:\n%s", stdout.String())
	}
}
