// detlint is the repo's determinism-and-invariant multichecker: a
// static-analysis suite enforcing that simulation results stay a pure
// function of core.Config (the property the paper's validation and the
// simd result cache both rest on). It runs eight analyzers — the v1
// syntax checks nondet, confighash, floatcmp, metricreg (DESIGN.md
// §10) and the v2 dataflow checks simunits, ctxflow, lockdisc,
// hotalloc (DESIGN.md §15) — over the deterministic packages and the
// service layer.
//
// Usage:
//
//	detlint [-C dir] [-v] [-fix | -diff] [-baseline file | -write-baseline file] [packages...]
//
// With no package arguments it checks the default scope: every
// repro/internal/... package. Findings print as
// file:line:col: analyzer: message, and the exit status is 1 when any
// finding survives //detlint:allow suppression and the baseline.
//
//	-fix             apply each finding's suggested fix in place
//	-diff            print the suggested fixes as a unified diff instead
//	-baseline file   drop findings accepted by a committed baseline
//	-write-baseline  regenerate the baseline from the current findings
//	-v               report per-analyzer wall time
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory to resolve packages from (the module root)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	verbose := fs.Bool("v", false, "report per-analyzer wall time")
	fix := fs.Bool("fix", false, "apply suggested fixes in place")
	diff := fs.Bool("diff", false, "print suggested fixes as a unified diff (no files touched)")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings to subtract")
	writeBaseline := fs.String("write-baseline", "", "write the current findings as a baseline to this file and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: detlint [-C dir] [-v] [-fix | -diff] [-baseline file] [packages...]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nSuppress a finding with //detlint:allow [analyzer] <reason>.\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *fix && *diff {
		fmt.Fprintln(stderr, "detlint: -fix and -diff are mutually exclusive")
		return 2
	}

	patterns := fs.Args()
	defaultScope := len(patterns) == 0
	if defaultScope {
		patterns = []string{"repro/internal/..."}
	}

	// One invocation = one view of the tree: drop stale module state
	// (stdlib stays cached) so reruns after -fix see the rewrite.
	lint.ResetLoadCache()
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	if defaultScope {
		// The linter does not lint itself: its sources are full of the
		// very patterns (exposition fragments, finding messages) the
		// analyzers hunt for.
		kept := pkgs[:0]
		for _, p := range pkgs {
			if p.Path != "repro/internal/lint" && !strings.HasPrefix(p.Path, "repro/internal/lint/") {
				kept = append(kept, p)
			}
		}
		pkgs = kept
	}
	diags, timings, err := lint.RunPackagesTimed(pkgs, analyzers.All())
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	if *verbose {
		for _, tm := range timings {
			fmt.Fprintf(stderr, "detlint: %-12s %8.1fms  %d finding(s)\n", tm.Analyzer, float64(tm.Elapsed.Microseconds())/1000, tm.Findings)
		}
	}

	modRoot := ""
	if len(pkgs) > 0 {
		modRoot = pkgs[0].ModRoot
	}

	if *writeBaseline != "" {
		b := lint.BaselineFromDiags(diags, modRoot)
		if err := os.WriteFile(*writeBaseline, []byte(lint.FormatBaseline(b)), 0o644); err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "detlint: wrote %d baseline entr%s to %s\n", len(b.Counts), plural(len(b.Counts), "y", "ies"), *writeBaseline)
		return 0
	}

	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
		b, err := lint.ParseBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
		fresh, accepted := lint.FilterBaseline(diags, b, modRoot)
		if *verbose && len(accepted) > 0 {
			fmt.Fprintf(stderr, "detlint: %d finding(s) accepted by baseline %s\n", len(accepted), *baselinePath)
		}
		diags = fresh
	}

	if *fix || *diff {
		fset := lint.SharedFset()
		edits := lint.CollectEdits(fset, diags)
		if *diff {
			d, err := lint.DiffFixes(edits)
			if err != nil {
				fmt.Fprintln(stderr, "detlint:", err)
				return 2
			}
			fmt.Fprint(stdout, d)
			return exitFor(len(diags))
		}
		files, err := lint.WriteFixes(edits)
		if err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
		if len(files) > 0 {
			fmt.Fprintf(stderr, "detlint: applied %d fix(es) in %s\n", len(edits), strings.Join(files, ", "))
		}
		// Report only what no fix resolved; the caller reruns to verify
		// the fixed tree is clean.
		var unfixed []lint.Diagnostic
		for _, d := range diags {
			if len(d.SuggestedFixes) == 0 {
				unfixed = append(unfixed, d)
			}
		}
		diags = unfixed
	}

	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "detlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
	}
	return exitFor(len(diags))
}

func exitFor(findings int) int {
	if findings > 0 {
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
