// detlint is the repo's determinism-and-invariant multichecker: a
// static-analysis suite enforcing that simulation results stay a pure
// function of core.Config (the property the paper's validation and the
// simd result cache both rest on). It runs four analyzers — nondet,
// confighash, floatcmp, metricreg; see DESIGN.md §10 — over the
// deterministic packages and the service layer.
//
// Usage:
//
//	detlint [-C dir] [packages...]
//
// With no package arguments it checks the default scope: every
// repro/internal/... package. Findings print as
// file:line:col: analyzer: message, and the exit status is 1 when any
// finding survives //detlint:allow suppression.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

func main() {
	dir := flag.String("C", ".", "directory to resolve packages from (the module root)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: detlint [-C dir] [packages...]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nSuppress a finding with //detlint:allow [analyzer] <reason>.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	defaultScope := len(patterns) == 0
	if defaultScope {
		patterns = []string{"repro/internal/..."}
	}

	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	if defaultScope {
		// The linter does not lint itself: its sources are full of the
		// very patterns (exposition fragments, finding messages) the
		// analyzers hunt for.
		kept := pkgs[:0]
		for _, p := range pkgs {
			if p.Path != "repro/internal/lint" && !strings.HasPrefix(p.Path, "repro/internal/lint/") {
				kept = append(kept, p)
			}
		}
		pkgs = kept
	}
	diags, err := lint.RunPackages(pkgs, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
