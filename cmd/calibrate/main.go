// Command calibrate reproduces the OCR parameter reconstruction of
// DESIGN.md §1: the paper's text is digit-garbled, so the disk
// constants (S, R, T) were recovered by fitting the paper's own
// closed-form equations to the anchor values that survive in the
// prose. This tool performs that fit as a grid search and prints the
// residuals of the winning parameter set, demonstrating that the
// committed constants are the ones the anchors determine.
//
// Usage:
//
//	calibrate              # search the default grid
//	calibrate -fine        # refine around the committed constants
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/analysis"
	"repro/internal/disk"
	"repro/internal/sim"
)

// anchor is one legible value from the paper's prose: a configuration,
// which equation predicts it, and the target in seconds.
type anchor struct {
	name    string
	k, d, n int
	eq      func(m analysis.Model) sim.Time // per-block expression
	target  float64                         // seconds, from the prose
}

// anchors returns the spot values used for the fit. Targets are the
// digit sequences that survive OCR (see DESIGN.md §1); each is the
// total for 1000-block runs.
func anchors() []anchor {
	return []anchor{
		{"eq1 k=25 D=1", 25, 1, 1, analysis.Model.Eq1NoPrefetchSingleDisk, 339.8},
		{"eq1 k=50 D=1", 50, 1, 1, analysis.Model.Eq1NoPrefetchSingleDisk, 810},
		{"eq2 k=25 N=10", 25, 1, 10, analysis.Model.Eq2IntraSingleDisk, 93.8},
		{"eq2 k=50 N=10", 50, 1, 10, analysis.Model.Eq2IntraSingleDisk, 200.7},
		{"eq3 k=25 D=5", 25, 5, 1, analysis.Model.Eq3NoPrefetchMultiDisk, 287.4},
		{"eq3 k=50 D=10", 50, 10, 1, analysis.Model.Eq3NoPrefetchMultiDisk, 574.5},
		{"eq4 k=25 D=5 N=10", 25, 5, 10, analysis.Model.Eq4IntraMultiDiskSync, 88.6},
		{"eq5 k=25 D=5 N=10", 25, 5, 10, analysis.Model.Eq5InterMultiDiskSync, 20.5},
	}
}

// model builds the analytic model for a candidate parameter set.
func model(s, r, t float64, k, d, n int) analysis.Model {
	p := disk.PaperParams()
	p.SeekPerCylinder = sim.Ms(s)
	p.AvgRotational = sim.Ms(r)
	p.TransferPerBlock = sim.Ms(t)
	return analysis.FromConfig(p, k, d, n, 1000)
}

// loss returns the sum of squared relative errors over the anchors.
func loss(s, r, t float64) float64 {
	sum := 0.0
	for _, a := range anchors() {
		m := model(s, r, t, a.k, a.d, a.n)
		got := m.TotalTime(a.eq(m), 1000).Seconds()
		rel := (got - a.target) / a.target
		sum += rel * rel
	}
	return sum
}

func main() {
	fine := flag.Bool("fine", false, "refine around the committed constants instead of the broad grid")
	flag.Parse()

	// Candidate grids. R is tied to plausible spindle speeds (half a
	// revolution at 7200/5400/3600/2400 RPM); T to era transfer rates;
	// S spans linear coefficients from very fast to sluggish arms.
	sGrid := frange(0.005, 0.06, 0.0025)
	rGrid := []float64{4.17, 5.55, 8.33, 12.5}
	tGrid := frange(1.0, 5.0, 0.05)
	if *fine {
		sGrid = frange(0.015, 0.025, 0.0005)
		rGrid = frange(8.0, 8.7, 0.01)
		tGrid = frange(2.5, 2.8, 0.005)
	}

	bestS, bestR, bestT := 0.0, 0.0, 0.0
	best := math.Inf(1)
	for _, s := range sGrid {
		for _, r := range rGrid {
			for _, t := range tGrid {
				if l := loss(s, r, t); l < best {
					best, bestS, bestR, bestT = l, s, r, t
				}
			}
		}
	}
	if math.IsInf(best, 1) {
		fmt.Fprintln(os.Stderr, "calibrate: empty grid")
		os.Exit(1)
	}

	fmt.Printf("best fit: S = %.4f ms/cyl, R = %.2f ms, T = %.3f ms  (loss %.3g)\n",
		bestS, bestR, bestT, best)
	fmt.Printf("committed: S = 0.0200 ms/cyl, R = 8.33 ms, T = 2.660 ms\n\n")
	fmt.Printf("%-20s %10s %10s %8s\n", "anchor", "target", "fit", "rel err")
	for _, a := range anchors() {
		m := model(bestS, bestR, bestT, a.k, a.d, a.n)
		got := m.TotalTime(a.eq(m), 1000).Seconds()
		fmt.Printf("%-20s %10.1f %10.1f %+7.1f%%\n",
			a.name, a.target, got, 100*(got-a.target)/a.target)
	}
}

// frange returns lo, lo+step, ... up to and including hi (within eps).
func frange(lo, hi, step float64) []float64 {
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, v)
	}
	return out
}
