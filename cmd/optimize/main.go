// Command optimize runs a black-box configuration search over the
// merge-simulation engine and prints the optimum, the knee (cheapest
// near-optimal point), and the search accounting. It can search
// in-process — no daemon needed — or drive the /v1/optimize endpoint
// of a running simd with -addr, in which case concurrent searches and
// plain simulate traffic share evaluations through the daemon's
// result cache.
//
// Dimensions accept either a comma list or a min:max[:step] range:
//
//	optimize -n 1,5,10,20 -strategies intra-unsync,inter-unsync
//	optimize -d 1:10 -goal min_cost_per_block
//	optimize -addr localhost:8080 -n 1:20:5 -algorithm anneal -opt-seed 7
//
// Output is a human-readable summary by default; -json dumps the full
// response (including the trace) and -svg writes the search-trajectory
// figure to a file.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr = flag.String("addr", "", "search via a running simd at host:port instead of in-process")

		// Template: the fixed part of every candidate.
		k         = flag.Int("k", 0, "template merge order (0 = paper default)")
		d         = flag.Int("d", 0, "template disk count (0 = paper default)")
		n         = flag.Int("n-fixed", 0, "template prefetch depth (0 = paper default)")
		blocks    = flag.Int("blocks", 0, "template blocks per run (0 = paper default)")
		seed      = flag.Uint64("seed", 0, "template simulation seed (0 = 1)")
		interRun  = flag.Bool("inter-run", false, "template inter-run prefetching (overridden by -strategies)")
		synced    = flag.Bool("synchronized", false, "template synchronized reads (overridden by -strategies)")
		placement = flag.String("placement", "", "template placement (overridden by -placements)")

		// Space: comma lists or min:max[:step] ranges; empty = pinned.
		kDim       = flag.String("k-dim", "", "search k over these values")
		dDim       = flag.String("d-dim", "", "search d over these values")
		nDim       = flag.String("n", "", "search prefetch depth over these values")
		cacheDim   = flag.String("cache", "", "search cache_blocks over these values (0 = natural, -1 = unlimited)")
		strategies = flag.String("strategies", "", "comma list of prefetch strategies to search")
		placements = flag.String("placements", "", "comma list of placements to search")

		goal       = flag.String("goal", "", "objective: min_time, max_overlap or min_cost_per_block")
		diskCost   = flag.Float64("disk-cost", 0, "cost units per disk (min_cost_per_block)")
		ramCost    = flag.Float64("ram-cost", 0, "cost units per cache block (min_cost_per_block)")
		baseCost   = flag.Float64("base-cost", 0, "fixed cost units per configuration (min_cost_per_block)")
		maxSeconds = flag.Float64("max-seconds", 0, "constraint: reject candidates slower than this")
		minSuccess = flag.Float64("min-success", 0, "constraint: reject candidates below this success ratio")

		algorithm = flag.String("algorithm", "", "search algorithm: grid, coordinate or anneal")
		optSeed   = flag.Uint64("opt-seed", 0, "search seed (anneal; 0 = 1)")
		maxEvals  = flag.Int("max-evals", 0, "evaluation budget (0 = service default)")
		temp      = flag.Float64("temp", 0, "anneal initial temperature (0 = default)")
		cooling   = flag.Float64("cooling", 0, "anneal cooling factor (0 = default)")
		steps     = flag.Int("steps", 0, "anneal proposal budget (0 = one less than the evaluation budget)")

		trialsMin = flag.Int("trials-min", 0, "trials per evaluation before checking the CI (0 = 1)")
		trialsMax = flag.Int("trials-max", 0, "trial escalation ceiling (0 = min)")
		relCI     = flag.Float64("rel-ci95", 0, "stop escalating trials once CI95/mean falls below this")

		jsonOut = flag.Bool("json", false, "print the full JSON response instead of the summary")
		svgOut  = flag.String("svg", "", "write the search-trajectory figure (SVG) to this file")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall search budget")
		workers = flag.Int("workers", 0, "engine pool size for in-process search (0 = GOMAXPROCS)")
	)
	flag.Parse()

	req := service.OptimizeRequest{Figure: *svgOut != ""}
	if *k != 0 || *d != 0 || *n != 0 || *blocks != 0 || *seed != 0 ||
		*interRun || *synced || *placement != "" {
		req.Template = &service.SimulateRequest{
			K: *k, D: *d, N: *n, BlocksPerRun: *blocks, Seed: *seed,
			InterRun: *interRun, Synchronized: *synced, Placement: *placement,
		}
	}
	req.Space = service.OptimizeSpaceRequest{
		K:           parseDim("k-dim", *kDim),
		D:           parseDim("d-dim", *dDim),
		N:           parseDim("n", *nDim),
		CacheBlocks: parseDim("cache", *cacheDim),
		Strategies:  splitList(*strategies),
		Placements:  splitList(*placements),
	}
	if *goal != "" || *diskCost != 0 || *ramCost != 0 || *baseCost != 0 {
		req.Objective = &service.ObjectiveRequest{
			Goal: *goal, DiskCost: *diskCost, RAMCostPerBlock: *ramCost, BaseCost: *baseCost,
		}
	}
	if *maxSeconds != 0 || *minSuccess != 0 {
		req.Constraints = &service.ConstraintsRequest{MaxSeconds: *maxSeconds, MinSuccess: *minSuccess}
	}
	if *algorithm != "" || *optSeed != 0 || *maxEvals != 0 || *temp != 0 || *cooling != 0 || *steps != 0 {
		req.Search = &service.SearchRequest{
			Algorithm: *algorithm, Seed: *optSeed, MaxEvaluations: *maxEvals,
			Temp: *temp, Cooling: *cooling, Steps: *steps,
		}
	}
	if *trialsMin != 0 || *trialsMax != 0 || *relCI != 0 {
		req.Trials = &service.TrialPolicyRequest{Min: *trialsMin, Max: *trialsMax, RelCI95: *relCI}
	}

	var (
		body []byte
		err  error
	)
	if *addr != "" {
		body, err = remote(*addr, req, *timeout)
	} else {
		body, err = local(req, *timeout, *workers)
	}
	if err != nil {
		fail("%v", err)
	}

	if *svgOut != "" {
		writeFigure(*svgOut, body)
	}
	if *jsonOut {
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, body, "", "  "); err != nil {
			fail("bad response: %v", err)
		}
		fmt.Println(pretty.String())
		return
	}
	summarize(body)
}

// local runs the search in-process through the same service path the
// daemon uses, so cache reuse and admission behave identically.
func local(req service.OptimizeRequest, timeout time.Duration, workers int) ([]byte, error) {
	svc := service.New(service.Options{RequestTimeout: timeout, Workers: workers})
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	body, _, _, err := svc.Optimize(ctx, req)
	return body, err
}

// remote posts the search to a running simd.
func remote(addr string, req service.OptimizeRequest, timeout time.Duration) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Post("http://"+addr+"/v1/optimize", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// response mirrors the parts of the wire response the summary needs.
type response struct {
	Algorithm string `json:"algorithm"`
	Goal      string `json:"goal"`
	Seed      uint64 `json:"seed"`
	Best      *entry `json:"best"`
	Knee      *entry `json:"knee"`
	Trace     []struct {
		Status string `json:"status"`
	} `json:"trace"`
	Evaluations int    `json:"evaluations"`
	CacheServed int    `json:"cache_served"`
	Distinct    int    `json:"distinct_points"`
	Truncated   bool   `json:"truncated"`
	FigureSVG   string `json:"figure_svg"`
}

type entry struct {
	Params    json.RawMessage `json:"params"`
	Objective float64         `json:"objective"`
	Seconds   float64         `json:"seconds"`
	CostRate  float64         `json:"cost_rate"`
	Trials    int             `json:"trials"`
}

func summarize(body []byte) {
	var r response
	if err := json.Unmarshal(body, &r); err != nil {
		fail("bad response: %v", err)
	}
	fmt.Printf("algorithm    %s (seed %d)\n", r.Algorithm, r.Seed)
	fmt.Printf("goal         %s\n", r.Goal)
	fmt.Printf("evaluations  %d (%d cache-served, %d distinct points)\n",
		r.Evaluations, r.CacheServed, r.Distinct)
	if r.Truncated {
		fmt.Println("truncated    search stopped at the evaluation or visit budget")
	}
	infeasible := 0
	for _, t := range r.Trace {
		if t.Status != "ok" {
			infeasible++
		}
	}
	if infeasible > 0 {
		fmt.Printf("skipped      %d infeasible or invalid points\n", infeasible)
	}
	if r.Best == nil {
		fmt.Println("best         none (no feasible point in the space)")
		return
	}
	fmt.Printf("best         %s\n", r.Best.Params)
	fmt.Printf("             objective %.4g, %.2fs over %d trials\n",
		r.Best.Objective, r.Best.Seconds, r.Best.Trials)
	if r.Knee != nil {
		fmt.Printf("knee         %s\n", r.Knee.Params)
		fmt.Printf("             objective %.4g at cost rate %.3g\n",
			r.Knee.Objective, r.Knee.CostRate)
	}
}

func writeFigure(path string, body []byte) {
	var r response
	if err := json.Unmarshal(body, &r); err != nil {
		fail("bad response: %v", err)
	}
	if r.FigureSVG == "" {
		fail("response has no figure (no feasible optimum?)")
	}
	if err := os.WriteFile(path, []byte(r.FigureSVG), 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Printf("figure       %s\n", path)
}

// parseDim parses a dimension spec: a comma list ("1,5,10") or a
// min:max[:step] range ("1:20:5"). Empty means the dimension is
// pinned at the template value.
func parseDim(name, s string) *service.DimensionRequest {
	if s == "" {
		return nil
	}
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) > 3 {
			fail("-%s %q: want min:max or min:max:step", name, s)
		}
		nums := make([]int, len(parts))
		for i, p := range parts {
			nums[i] = parseInt(name, s, p)
		}
		d := &service.DimensionRequest{Min: nums[0], Max: nums[1]}
		if len(nums) == 3 {
			d.Step = nums[2]
		}
		return d
	}
	var vals []int
	for _, p := range strings.Split(s, ",") {
		vals = append(vals, parseInt(name, s, p))
	}
	return &service.DimensionRequest{Values: vals}
}

func parseInt(name, spec, s string) int {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		fail("-%s %q: %q is not an integer", name, spec, s)
	}
	return v
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "optimize: "+format+"\n", args...)
	os.Exit(1)
}
