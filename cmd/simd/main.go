// Command simd is the simulation daemon: a long-lived HTTP front-end
// over the merge-simulation engine with a result cache, singleflight
// deduplication and admission control (see internal/service).
//
//	simd -addr :8080
//
// API:
//
//	POST /v1/simulate  one configuration, aggregated over trials
//	POST /v1/sweep     a batch of configurations in one admitted run
//	POST /v1/optimize  black-box configuration search over a space
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      Prometheus text format
//
// Example:
//
//	curl -s localhost:8080/v1/simulate -d '{"k":25,"d":5,"n":10,"inter_run":true}'
//
// Persistence: -disk-cache-dir backs the in-memory result cache with a
// crash-safe on-disk tier (see internal/diskcache), so restarts and
// deploys serve warm instead of re-running every sweep. Entries are
// CRC-verified on every read, corrupt files are quarantined instead of
// served, and a failing volume trips the tier to memory-only rather
// than degrading availability.
//
// Observability: -log-json emits one structured log line per request
// (with the X-Request-ID the daemon assigns or echoes), and
// -pprof-addr serves net/http/pprof on a separate listener so profiling
// is opt-in and never exposed on the API address.
//
// simd drains gracefully on SIGINT/SIGTERM: the health check flips to
// 503, the listener stops accepting, in-flight requests and detached
// engine runs finish (bounded by -drain-timeout), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/diskcache"
	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (use :0 for a random port)")
		cacheEntries = flag.Int("cache", 1024, "result cache capacity in entries")
		cacheBytes   = flag.Int64("cache-bytes", 256<<20, "result cache capacity in bytes (bodies only; -1 = unbounded)")
		diskDir      = flag.String("disk-cache-dir", "", "directory for the persistent result-cache tier (empty = memory-only)")
		diskBytes    = flag.Int64("disk-cache-bytes", 1<<30, "disk-tier capacity in bytes (-1 = unbounded)")
		maxConc      = flag.Int("max-concurrent", 0, "max concurrent engine runs (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("queue", 0, "max runs queued for a slot before shedding with 429 (0 = 4x max-concurrent)")
		timeout      = flag.Duration("request-timeout", 60*time.Second, "per-request budget: queue wait + engine run")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown budget for in-flight work")
		maxTrials    = flag.Int("max-trials", 64, "max trials per request")
		maxPoints    = flag.Int("max-points", 512, "max points per sweep")
		maxOptEvals  = flag.Int("max-optimize-evals", 512, "max evaluations per configuration search")
		workers      = flag.Int("workers", 0, "engine pool size per admitted run (0 = GOMAXPROCS)")
		maxTraceEv   = flag.Int("max-trace-events", 0, "event cap per traced simulate request (0 = service default)")
		logJSON      = flag.Bool("log-json", false, "emit one JSON log line per request on stderr")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
	)
	flag.Parse()

	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	// The persistent tier is opened here, not inside the service: a bad
	// cache directory should kill the daemon at startup with a clear
	// error, while a volume that starts dying later is the disk tier's
	// circuit breaker's problem, and the daemon keeps serving
	// memory-only.
	var disk *diskcache.Cache
	if *diskDir != "" {
		var err error
		disk, err = diskcache.Open(diskcache.Options{Dir: *diskDir, MaxBytes: *diskBytes})
		if err != nil {
			log.Fatalf("simd: disk cache: %v", err)
		}
		st := disk.Stats()
		fmt.Printf("simd: disk cache %s: %d entries / %d bytes recovered, %d quarantined\n",
			*diskDir, st.Entries, st.Bytes, st.Quarantined)
	}

	svc := service.New(service.Options{
		CacheEntries:     *cacheEntries,
		CacheBytes:       *cacheBytes,
		MaxConcurrent:    *maxConc,
		MaxQueue:         *maxQueue,
		RequestTimeout:   *timeout,
		MaxTrials:        *maxTrials,
		MaxPoints:        *maxPoints,
		MaxOptimizeEvals: *maxOptEvals,
		Workers:          *workers,
		MaxTraceEvents:   *maxTraceEv,
		Logger:           logger,
		DiskCache:        disk,
	})

	// pprof gets its own listener and mux so profiling endpoints are
	// never reachable through the public API address.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("simd: pprof listen: %v", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("simd: pprof on %s\n", pln.Addr())
		go func() {
			psrv := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			if err := psrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("simd: pprof serve: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("simd: %v", err)
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Printed on one line so scripts (CI, examples) can scrape the
	// bound address even under -addr :0.
	fmt.Printf("simd: listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("simd: signal received, draining")
	case err := <-errCh:
		log.Fatalf("simd: serve: %v", err)
	}

	svc.StartDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("simd: shutdown: %v", err)
	}
	if err := svc.Drain(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("simd: drain: %v", err)
	}
	// After Drain no engine run can still write: flush the disk tier's
	// recency index so the next start restores exact LRU order.
	if err := svc.Close(); err != nil {
		log.Printf("simd: close: %v", err)
	}
	st := svc.StatsSnapshot()
	log.Printf("simd: drained (cache %d entries / %d bytes, %d hits, %d misses, %d deduped)",
		st.CacheEntries, st.CacheBytes, st.CacheHits, st.CacheMisses, st.DedupShared)
	if *diskDir != "" {
		log.Printf("simd: disk cache (state %d, %d entries / %d bytes, %d hits, %d writes, %d evicted, %d quarantined)",
			st.Disk.State, st.Disk.Entries, st.Disk.Bytes, st.Disk.Hits, st.Disk.Writes, st.Disk.Evictions, st.Disk.Quarantined)
	}
}
