// Sort pipeline end to end: plan a memory-constrained multi-pass sort
// with the simulation-calibrated planner, execute the same sort for
// real with bounded fan-in, and compare the planner's estimate against
// the simulated I/O time of the real merge passes.
//
// This closes the loop between every layer of the library: the planner
// (internal/plan), the real external sorter (internal/extsort) and the
// paper's I/O model (internal/core).
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/extsort"
	"repro/internal/plan"
	"repro/internal/rng"
)

func main() {
	// A sort that cannot finish in one merge: 200k records in 4000
	// blocks, with only 40 blocks of memory -> ~100 initial runs, while
	// the cache supports a fan-in well below that.
	sortCfg := extsort.DefaultConfig()
	sortCfg.MemoryBlocks = 40

	const records = 200_000
	r := rng.New(7)
	data := make([]byte, records*sortCfg.RecordSize)
	for i := 0; i+8 <= len(data); i += 8 {
		binary.BigEndian.PutUint64(data[i:], r.Uint64())
	}
	totalBlocks := int64(records / sortCfg.RecordsPerBlock())

	// 1. Plan it.
	job := plan.Job{
		TotalBlocks:  totalBlocks,
		MemoryBlocks: sortCfg.MemoryBlocks,
		D:            5,
		InterRun:     true,
	}
	p, err := plan.BuildCalibrated(job, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p)

	// 2. Execute the real sort with the planned fan-in.
	fanIn := p.Passes[0].FanIn
	in, err := extsort.NewSliceReader(data, sortCfg.RecordSize)
	if err != nil {
		log.Fatal(err)
	}
	out := extsort.NewCountingWriter(sortCfg)
	res, err := extsort.MultiPassSort(sortCfg, fanIn, in,
		func() extsort.RunStore { return extsort.NewMemStore() }, out)
	if err != nil {
		log.Fatal(err)
	}
	if !out.Ordered() || out.Count() != records {
		log.Fatalf("sort verification failed: ordered=%v count=%d", out.Ordered(), out.Count())
	}
	fmt.Printf("\nreal sort: %d records, %d passes at fan-in %d, output verified sorted\n",
		res.Records, len(res.Passes), fanIn)

	// 3. Time the real merge passes under the planned strategy.
	base := core.Default()
	base.D = job.D
	base.N = p.Passes[0].N
	base.InterRun = p.Passes[0].InterRun
	base.CacheBlocks = job.MemoryBlocks
	perPass, total, err := extsort.SimulatePasses(res, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplanner estimate vs simulated real passes:")
	for i, pt := range perPass {
		est := "-"
		if i < len(p.Passes) {
			est = fmt.Sprintf("%.1f s", p.Passes[i].Estimated.Seconds())
		}
		fmt.Printf("  pass %d: estimated %-8s  real trace simulated %.1f s\n",
			i, est, pt.Seconds())
	}
	fmt.Printf("  total merge I/O: %.1f s (planner estimated %.1f s)\n",
		total.Seconds(), p.Estimated.Seconds())
}
