// External sort end-to-end: sort one million synthetic 80-byte records
// with the real external mergesort (run formation + loser-tree merge),
// verify the output, and replay the merge's actual block-depletion
// trace through the simulator to see what the paper's prefetching
// strategies buy on real data rather than the random depletion model.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/extsort"
	"repro/internal/rng"
)

func main() {
	cfg := extsort.DefaultConfig() // 80-byte records, 4096-byte blocks
	cfg.MemoryBlocks = 400         // ~20400 records per memory load
	cfg.Formation = extsort.ReplacementSelection

	const records = 1_000_000
	r := rng.New(42)
	data := make([]byte, records*cfg.RecordSize)
	for i := 0; i < len(data)-8; i += 8 {
		binary.BigEndian.PutUint64(data[i:], r.Uint64())
	}

	in, err := extsort.NewSliceReader(data, cfg.RecordSize)
	if err != nil {
		log.Fatal(err)
	}
	store := extsort.NewMemStore()
	out := extsort.NewCountingWriter(cfg)

	stats, err := extsort.Sort(cfg, in, store, out)
	if err != nil {
		log.Fatal(err)
	}
	if !out.Ordered() || out.Count() != records {
		log.Fatalf("verification failed: ordered=%v count=%d", out.Ordered(), out.Count())
	}

	fmt.Printf("sorted %d records via %s: %d runs (replacement selection\n",
		stats.Records, cfg.Formation, stats.Runs)
	fmt.Printf("runs average ~2x the %d-block memory)\n\n", cfg.MemoryBlocks)

	// Replay the real depletion trace under each strategy.
	base := core.Default()
	base.D = 5
	base.N = 10
	base.CacheBlocks = cache.Unlimited

	fmt.Println("merge-phase I/O time for the real trace (D=5, unsynchronized):")
	for _, s := range []struct {
		label string
		n     int
		inter bool
	}{
		{"no prefetch", 1, false},
		{"intra-run N=10", 10, false},
		{"inter+intra N=10", 10, true},
	} {
		c := base
		c.N = s.n
		c.InterRun = s.inter
		res, err := extsort.SimulateMerge(store.RunBlocks(), stats.Trace, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %8.2f s  (%.2f disks busy on average)\n",
			s.label, res.TotalTime.Seconds(), res.MeanConcurrencyWhenBusy)
	}
}
