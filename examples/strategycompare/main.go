// Strategy comparison across disk counts: reproduces the paper's
// central quantitative insight — unsynchronized intra-run prefetching
// only ever overlaps ~sqrt(pi*D/2) disks (the urn game), while
// inter-run prefetching drives all D — by sweeping D and printing the
// measured overlap next to both laws.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
)

func main() {
	const n = 20 // deep prefetch so the asymptotic overlap is visible

	fmt.Printf("%4s  %6s | %-28s | %-18s\n", "D", "k", "intra-run overlap", "inter-run overlap")
	fmt.Printf("%4s  %6s | %9s %9s %8s | %9s %8s\n",
		"", "", "urn game", "asymptote", "measured", "max (=D)", "measured")

	for _, d := range []int{2, 5, 10, 20} {
		k := 5 * d // keep k/D fixed at the paper's 5 runs per disk

		intra := core.Default()
		intra.K, intra.D, intra.N = k, d, n
		intra.CacheBlocks = intra.DefaultCache()
		intraAgg, err := core.RunTrials(intra, 3)
		if err != nil {
			log.Fatal(err)
		}

		inter := intra
		inter.InterRun = true
		inter.CacheBlocks = cache.Unlimited
		interAgg, err := core.RunTrials(inter, 3)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%4d  %6d | %9.2f %9.2f %8.2f | %9d %8.2f\n",
			d, k,
			analysis.UrnGameExpectedLength(d),
			analysis.UrnGameAsymptote(d),
			intraAgg.Concurrency.Mean(),
			d,
			interAgg.Concurrency.Mean())
	}

	fmt.Println("\nintra-run concurrency flattens like sqrt(D); inter-run tracks D.")
	fmt.Println("This is why the paper concludes the two strategies must be combined.")
}
