// Capacity planning: the question a practitioner asks of the paper —
// "how much cache do I need, and what prefetch depth N should I use,
// to merge my k runs from D disks within a time budget?"
//
// For each candidate cache size this example scans prefetch depths
// around the analytic knee, keeps the best, and reports which cache
// sizes meet the budget — exactly the trade-off surface of the paper's
// figure 3.5.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
)

func main() {
	const (
		k      = 50   // runs to merge
		d      = 5    // input disks
		budget = 45.0 // seconds allowed for the merge phase
	)

	base := core.Default()
	base.K = k
	base.D = d
	base.InterRun = true

	model := analysis.FromConfig(base.Disk, k, d, 1, base.BlocksPerRun)
	floor := model.MultiDiskFloor(base.BlocksPerRun).Seconds()
	fmt.Printf("merge of %d runs on %d disks; transfer floor %.1f s; budget %.1f s\n\n",
		k, d, floor, budget)
	fmt.Printf("%10s  %4s  %10s  %9s\n", "cache", "N", "total (s)", "success")

	for _, cacheBlocks := range []int{100, 200, 300, 400, 600, 800, 1200, 1600} {
		// Scan prefetch depths around the analytic knee and keep the
		// fastest — the paper's observation is that each cache size has
		// its own optimal N.
		knee := model.OptimalNForCache(cacheBlocks)
		bestN, bestTime, bestSuccess := 0, 0.0, 0.0
		for _, n := range []int{1, knee / 2, knee, knee + knee/2, 2 * knee} {
			if n < 1 || (bestN != 0 && n == bestN) {
				continue
			}
			cfg := base
			cfg.N = n
			cfg.CacheBlocks = cacheBlocks
			agg, err := core.RunTrials(cfg, 3)
			if err != nil {
				log.Fatal(err)
			}
			if bestN == 0 || agg.TotalTime.Mean() < bestTime {
				bestN, bestTime, bestSuccess = n, agg.TotalTime.Mean(), agg.SuccessRatio.Mean()
			}
		}
		mark := ""
		if bestTime <= budget {
			mark = "  <- meets budget"
		}
		fmt.Printf("%10d  %4d  %10.1f  %9.3f%s\n",
			cacheBlocks, bestN, bestTime, bestSuccess, mark)
	}

	fmt.Println("\nlarger caches admit larger N: seek and latency amortize away")
	fmt.Println("and the merge time approaches the transfer floor, exactly as in")
	fmt.Println("figure 3.5 of the paper.")
}
