// Command simclient drives a running simd daemon through its whole
// API: one simulate, the same simulate again (demonstrating the result
// cache), a sweep, and a metrics scrape. Start the daemon first:
//
//	go run ./cmd/simd -addr :8080 &
//	go run ./examples/simclient -addr localhost:8080
//
// It exits non-zero on the first unexpected response, which is what
// lets CI use it as the service smoke test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "simd host:port")
	flag.Parse()
	base := "http://" + *addr

	client := &http.Client{Timeout: 60 * time.Second}

	// 1. Health.
	body := get(client, base+"/healthz")
	fmt.Printf("healthz        %s\n", strings.TrimSpace(body))

	// 2. The paper's headline point: k=25, D=5, N=10, inter-run.
	req := `{"k":25,"d":5,"n":10,"inter_run":true,"trials":3}`
	var result struct {
		Strategy    string  `json:"strategy"`
		MeanSeconds float64 `json:"mean_total_seconds"`
		MeanSuccess float64 `json:"mean_success_ratio"`
	}
	status := post(client, base+"/v1/simulate", req, &result)
	fmt.Printf("simulate       %s: %.2fs mean, success %.3f (X-Cache: %s)\n",
		result.Strategy, result.MeanSeconds, result.MeanSuccess, status)

	// 3. Same request again: must be a cache hit.
	status = post(client, base+"/v1/simulate", req, &result)
	fmt.Printf("simulate again X-Cache: %s\n", status)
	if status != "hit" {
		fail("expected a cache hit on the repeated request, got %q", status)
	}

	// 4. A 4-point prefetch-depth sweep.
	sweep := `{"trials":2,"points":[
		{"k":25,"d":5,"n":1},
		{"k":25,"d":5,"n":5},
		{"k":25,"d":5,"n":10},
		{"k":25,"d":5,"n":20}]}`
	var sw struct {
		Points []struct {
			N           int     `json:"n"`
			MeanSeconds float64 `json:"mean_total_seconds"`
		} `json:"points"`
	}
	status = post(client, base+"/v1/sweep", sweep, &sw)
	fmt.Printf("sweep          %d points (X-Cache: %s)\n", len(sw.Points), status)
	for _, p := range sw.Points {
		fmt.Printf("  N=%-3d %.2fs\n", p.N, p.MeanSeconds)
	}
	if len(sw.Points) != 4 {
		fail("sweep returned %d points, want 4", len(sw.Points))
	}

	// 5. A small configuration search: which prefetch depth and
	// strategy minimize merge time for a k=8, D=2 merge? The space is
	// 6 points, so the daemon answers in well under a second, and the
	// trace records which evaluations were served from the cache.
	opt := `{
		"template":{"k":8,"d":2,"blocks_per_run":60},
		"space":{
			"n":{"values":[1,2,4]},
			"strategies":["intra-unsync","inter-unsync"],
			"cache_blocks":{"values":[0]}},
		"trials":{"min":2}}`
	var best struct {
		Best *struct {
			Params    json.RawMessage `json:"params"`
			Objective float64         `json:"objective"`
		} `json:"best"`
		Knee *struct {
			Params   json.RawMessage `json:"params"`
			CostRate float64         `json:"cost_rate"`
		} `json:"knee"`
		Evaluations int `json:"evaluations"`
		CacheServed int `json:"cache_served"`
	}
	status = post(client, base+"/v1/optimize", opt, &best)
	if best.Best == nil {
		fail("optimize returned no optimum")
	}
	fmt.Printf("optimize       %d evaluations, %d cache-served (X-Cache: %s)\n",
		best.Evaluations, best.CacheServed, status)
	fmt.Printf("  best  %s  (%.2fs)\n", best.Best.Params, best.Best.Objective)
	if best.Knee != nil {
		fmt.Printf("  knee  %s  (cost rate %.2f)\n", best.Knee.Params, best.Knee.CostRate)
	}

	// 6. The same search again: every evaluation must now come from the
	// result cache.
	post(client, base+"/v1/optimize", opt, &best)
	if best.CacheServed < best.Evaluations {
		fail("repeated optimize re-ran %d evaluations, want all %d cached",
			best.Evaluations-best.CacheServed, best.Evaluations)
	}
	fmt.Printf("optimize again %d/%d cache-served\n", best.CacheServed, best.Evaluations)

	// 7. Metrics scrape.
	metrics := get(client, base+"/metrics")
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "simd_cache_") || strings.HasPrefix(line, "simd_requests_total") {
			fmt.Printf("metric         %s\n", line)
		}
	}
	if !strings.Contains(metrics, "simd_cache_hits_total") {
		fail("metrics exposition is missing simd_cache_hits_total")
	}
	fmt.Println("simclient: all checks passed")
}

// get fetches a URL and returns the body, failing the run on errors.
// Shed (429) and unavailable (503) responses are retried with backoff.
func get(client *http.Client, url string) string {
	resp, err := newRetrier().do(client, "GET", url, "", nil)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fail("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

// post sends a JSON body, decodes the response into out, and returns
// the X-Cache header. Shed (429) and unavailable (503) responses are
// retried with backoff, honoring the daemon's Retry-After.
func post(client *http.Client, url, body string, out any) string {
	resp, err := newRetrier().do(client, "POST", url, "application/json", []byte(body))
	if err != nil {
		fail("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fail("POST %s: status %d: %s", url, resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, out); err != nil {
		fail("POST %s: bad response %s: %v", url, b, err)
	}
	return resp.Header.Get("X-Cache")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simclient: "+format+"\n", args...)
	os.Exit(1)
}
