package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// stubSequence serves the given status codes in order, then 200s, and
// counts requests. A Retry-After value is attached to every non-200.
func stubSequence(codes []int, retryAfter string) (*httptest.Server, *atomic.Int32) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n < len(codes) && codes[n] != http.StatusOK {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(codes[n])
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	return ts, &calls
}

// testRetrier returns a retrier with instant, recorded sleeps and a
// deterministic mid-range jitter draw.
func testRetrier(slept *[]time.Duration) *retrier {
	r := newRetrier()
	r.sleep = func(d time.Duration) { *slept = append(*slept, d) }
	r.jitter = func() float64 { return 0.5 }
	return r
}

func TestRetrySucceedsAfter429s(t *testing.T) {
	ts, calls := stubSequence([]int{429, 429, 200}, "")
	defer ts.Close()

	var slept []time.Duration
	r := testRetrier(&slept)
	resp, err := r.do(ts.Client(), "POST", ts.URL, "application/json", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != `{"ok":true}` {
		t.Fatalf("body %s", body)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3 (429, 429, 200)", calls.Load())
	}
	// Backoff grows exponentially and every jittered delay stays within
	// [d/2, d) of its nominal value d = base·2^(attempt-1).
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		nominal := r.base << i
		if d < nominal/2 || d >= nominal {
			t.Fatalf("retry %d slept %v, want in [%v, %v)", i+1, d, nominal/2, nominal)
		}
	}
	if slept[1] <= slept[0] {
		t.Fatalf("backoff not growing: %v then %v", slept[0], slept[1])
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	ts, _ := stubSequence([]int{429, 200}, "2")
	defer ts.Close()

	var slept []time.Duration
	resp, err := testRetrier(&slept).do(ts.Client(), "POST", ts.URL, "application/json", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Retry-After overrides the computed backoff exactly — no jitter.
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want exactly [2s]", slept)
	}
}

func TestRetryGivesUpAfterBudget(t *testing.T) {
	ts, calls := stubSequence([]int{503, 503, 503, 503, 503, 503, 503}, "")
	defer ts.Close()

	var slept []time.Duration
	r := testRetrier(&slept)
	if _, err := r.do(ts.Client(), "GET", ts.URL, "", nil); err == nil {
		t.Fatal("exhausted retrier returned no error")
	}
	if int(calls.Load()) != r.attempts {
		t.Fatalf("server saw %d requests, want %d", calls.Load(), r.attempts)
	}
}

func TestRetryDelayCapped(t *testing.T) {
	var slept []time.Duration
	r := testRetrier(&slept)
	for attempt := 1; attempt <= 40; attempt++ {
		if d := r.delay(attempt, 0); d >= r.cap {
			t.Fatalf("attempt %d delay %v at or above cap %v", attempt, d, r.cap)
		}
	}
}

func TestNonRetryableStatusReturnsImmediately(t *testing.T) {
	ts, calls := stubSequence([]int{400}, "")
	defer ts.Close()

	var slept []time.Duration
	resp, err := testRetrier(&slept).do(ts.Client(), "POST", ts.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want the 400 passed through", resp.StatusCode)
	}
	if calls.Load() != 1 || len(slept) != 0 {
		t.Fatalf("400 was retried: %d calls, %d sleeps", calls.Load(), len(slept))
	}
}
