package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// retrier retries transient daemon responses — 429 (shed by admission
// control) and 503 (timed out or draining) — with capped exponential
// backoff and jitter, so a burst of shed clients does not come back as
// the same synchronized burst. A Retry-After header, which simd sets on
// 429, overrides the computed backoff exactly: the server knows its
// queue better than the client's guess.
type retrier struct {
	attempts int           // total tries, including the first
	base     time.Duration // backoff before the first retry
	cap      time.Duration // backoff ceiling

	// sleep and jitter are injection points for tests; nil means
	// time.Sleep and math/rand.
	sleep  func(time.Duration)
	jitter func() float64 // uniform in [0, 1)
}

func newRetrier() *retrier {
	return &retrier{
		attempts: 5,
		base:     200 * time.Millisecond,
		cap:      5 * time.Second,
		sleep:    time.Sleep,
		jitter:   rand.Float64,
	}
}

// do POSTs (or GETs, with a nil body) until the response is not
// retryable or the attempt budget is spent. The final response is
// returned whatever its status; the caller still checks it.
func (r *retrier) do(client *http.Client, method, url, contentType string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			r.sleep(r.delay(attempt, lastRetryAfter(lastErr)))
		}
		req, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := client.Do(req)
		if err != nil {
			// Transport errors (daemon restarting, connection refused)
			// are as transient as a 503.
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		// The server assigns every request an ID (X-Request-ID); logging
		// it on the retried attempt lets the operator find the exact shed
		// or timed-out request in the daemon's structured log.
		log.Printf("simclient: %s %s: status %d (request id %s), retrying",
			method, url, resp.StatusCode, resp.Header.Get("X-Request-ID"))
		lastErr = &retryableStatus{code: resp.StatusCode, retryAfter: parseRetryAfter(resp)}
		resp.Body.Close()
	}
	if rs, ok := lastErr.(*retryableStatus); ok {
		return nil, fmt.Errorf("%s %s: still %d after %d attempts", method, url, rs.code, r.attempts)
	}
	return nil, fmt.Errorf("%s %s: %v (after %d attempts)", method, url, lastErr, r.attempts)
}

// delay computes the pause before the attempt-th try (attempt >= 1).
// With a server-provided Retry-After it is that duration exactly; the
// computed fallback is base·2^(attempt-1) capped, jittered into
// [d/2, d) so independent clients spread out.
func (r *retrier) delay(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	d := r.base << (attempt - 1)
	if d > r.cap || d <= 0 { // <= 0 guards shift overflow
		d = r.cap
	}
	return d/2 + time.Duration(r.jitter()*float64(d/2))
}

// retryableStatus carries a shed/unavailable response between attempts.
type retryableStatus struct {
	code       int
	retryAfter time.Duration
}

func (e *retryableStatus) Error() string { return fmt.Sprintf("status %d", e.code) }

// parseRetryAfter reads a Retry-After header in its delta-seconds form
// (the form simd sends); absent or unparseable means 0.
func parseRetryAfter(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// lastRetryAfter extracts the server-requested pause from the previous
// attempt's failure, if there was one.
func lastRetryAfter(err error) time.Duration {
	if rs, ok := err.(*retryableStatus); ok {
		return rs.retryAfter
	}
	return 0
}
