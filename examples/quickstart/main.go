// Quickstart: simulate the paper's headline configuration — merging
// k=25 sorted runs of 1000 blocks from D=5 disks — under the three
// strategies, and print total merge time alongside the closed-form
// predictions.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
)

func main() {
	// Start from the paper's defaults: calibrated RA-series disk,
	// round-robin run placement, all-or-demand admission.
	base := core.Default() // k=25, D=5, N=1

	model := analysis.FromConfig(base.Disk, base.K, base.D, 10, base.BlocksPerRun)

	fmt.Println("Merging 25 runs x 1000 blocks from 5 disks (unsynchronized):")

	// 1. The Kwan-Baer baseline: fetch only the demand block.
	res, err := core.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  no prefetch:        %6.1f s   (eq 3 predicts %.1f)\n",
		res.TotalTime.Seconds(),
		model.TotalTime(model.Eq3NoPrefetchMultiDisk(), base.BlocksPerRun).Seconds())

	// 2. Intra-run prefetching: N=10 contiguous blocks per fetch.
	intra := base
	intra.N = 10
	intra.CacheBlocks = intra.DefaultCache() // kN = 250 blocks
	res, err = core.Run(intra)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  intra-run, N=10:    %6.1f s   (overlap %.2f disks)\n",
		res.TotalTime.Seconds(), res.MeanConcurrencyWhenBusy)

	// 3. Combined inter+intra prefetching with an ample cache.
	inter := intra
	inter.InterRun = true
	inter.CacheBlocks = cache.Unlimited
	res, err = core.Run(inter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  inter+intra, N=10:  %6.1f s   (overlap %.2f disks, floor kTB/D = %.1f)\n",
		res.TotalTime.Seconds(), res.MeanConcurrencyWhenBusy,
		model.MultiDiskFloor(base.BlocksPerRun).Seconds())
}
