//go:build tools

// Package tools pins the static-analysis tool versions this repo is
// linted with. The build tag keeps it out of every real build, and the
// tools are deliberately NOT go.mod requirements: the library itself is
// stdlib-only, and adding analysis-tool module graphs would break
// offline/vendorless builds for a dependency no production binary uses.
//
// The single source of truth for versions is the Makefile
// (STATICCHECK_VERSION, GOVULNCHECK_VERSION); CI installs exactly
// those. To install locally:
//
//	go install honnef.co/go/tools/cmd/staticcheck@2025.1
//	go install golang.org/x/vuln/cmd/govulncheck@v1.1.4
//
// Building with -tags tools therefore fails unless those modules have
// been added to the module graph — that is intentional; this file is
// documentation with a compiler-checked shape, not an import site.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"  // pinned: v1.1.4
	_ "honnef.co/go/tools/cmd/staticcheck" // pinned: 2025.1
)
