// Package repro is a production-quality Go reproduction of Pai &
// Varman, "Prefetching with Multiple Disks for External Mergesort:
// Simulation and Analysis" (ICDE 1992).
//
// The module root holds the benchmark harness (bench_test.go): one
// benchmark per figure of the paper's evaluation plus micro-benchmarks
// of every substrate. The library itself lives under internal/ — see
// README.md for the package map, DESIGN.md for the system inventory
// and the OCR-calibrated parameter reconstruction, and EXPERIMENTS.md
// for the paper-vs-measured record.
//
// Entry points:
//
//	internal/core        the simulated merge engine (the paper's contribution)
//	internal/analysis    the paper's closed-form models
//	internal/extsort     a real external mergesort with trace replay
//	internal/plan        multi-pass sort planning
//	cmd/figures          regenerate the paper's evaluation
package repro
